package engine

import (
	"fmt"
	"math"

	"aiql/internal/ast"
)

// ewmaEnv is the optional extension environments implement to serve EWMA
// incrementally instead of folding the whole series per call.
type ewmaEnv interface {
	EWMA(name string, alpha float64) (float64, bool)
}

// evalEnv resolves variable references and history series inside having
// expressions.
type evalEnv interface {
	// Value returns the value of a named aggregate, hist windows back
	// (0 = current window).
	Value(name string, hist int) (float64, bool)
	// Series returns the full history of a named aggregate, oldest first,
	// including the current window; nil when unknown.
	Series(name string) []float64
}

// staticEnv is the trivial environment for non-windowed aggregation: only
// current values, no history.
type staticEnv map[string]float64

func (e staticEnv) Value(name string, hist int) (float64, bool) {
	if hist != 0 {
		return 0, false
	}
	v, ok := e[name]
	return v, ok
}

func (e staticEnv) Series(name string) []float64 {
	if v, ok := e[name]; ok {
		return []float64{v}
	}
	return nil
}

// evalBool evaluates a having expression to a boolean; nonzero is true.
func evalBool(e ast.Expr, env evalEnv) (bool, error) {
	v, err := evalNum(e, env)
	if err != nil {
		return false, err
	}
	return v != 0, nil
}

// evalNum evaluates a having expression numerically; booleans are 1/0.
func evalNum(e ast.Expr, env evalEnv) (float64, error) {
	switch v := e.(type) {
	case *ast.NumLit:
		return v.Val, nil
	case *ast.StrLit:
		return 0, fmt.Errorf("aiql: string literal %q in numeric expression", v.Val)
	case *ast.VarRef:
		val, ok := env.Value(v.Name, v.Hist)
		if !ok {
			// A missing history window contributes zero, matching the
			// semantics of a detector that has not yet seen enough windows.
			return 0, nil
		}
		return val, nil
	case *ast.FieldRef:
		val, ok := env.Value(v.ID+"."+v.Attr, 0)
		if !ok {
			return 0, fmt.Errorf("aiql: unknown field %s.%s in having clause", v.ID, v.Attr)
		}
		return val, nil
	case *ast.Unary:
		x, err := evalNum(v.X, env)
		if err != nil {
			return 0, err
		}
		if v.Op == "-" {
			return -x, nil
		}
		if x == 0 {
			return 1, nil
		}
		return 0, nil
	case *ast.Binary:
		return evalBinary(v, env)
	case *ast.Call:
		return evalCall(v, env)
	}
	return 0, fmt.Errorf("aiql: unsupported expression node %T", e)
}

func evalBinary(b *ast.Binary, env evalEnv) (float64, error) {
	l, err := evalNum(b.L, env)
	if err != nil {
		return 0, err
	}
	// Short-circuit logical operators.
	switch b.Op {
	case "&&":
		if l == 0 {
			return 0, nil
		}
		r, err := evalNum(b.R, env)
		if err != nil {
			return 0, err
		}
		return b2f(r != 0), nil
	case "||":
		if l != 0 {
			return 1, nil
		}
		r, err := evalNum(b.R, env)
		if err != nil {
			return 0, err
		}
		return b2f(r != 0), nil
	}
	r, err := evalNum(b.R, env)
	if err != nil {
		return 0, err
	}
	switch b.Op {
	case "+":
		return l + r, nil
	case "-":
		return l - r, nil
	case "*":
		return l * r, nil
	case "/":
		if r == 0 {
			return 0, nil // SQL-like: division by zero yields no signal
		}
		return l / r, nil
	case "=":
		return b2f(l == r), nil
	case "!=":
		return b2f(l != r), nil
	case "<":
		return b2f(l < r), nil
	case "<=":
		return b2f(l <= r), nil
	case ">":
		return b2f(l > r), nil
	case ">=":
		return b2f(l >= r), nil
	}
	return 0, fmt.Errorf("aiql: unsupported operator %q", b.Op)
}

// evalCall implements the built-in moving averages of paper Sec. 4.3 (SMA,
// CMA, WMA, EWMA) plus ABS. Each moving-average call takes the aggregate's
// history series — oldest first, current window last — from the
// environment.
func evalCall(c *ast.Call, env evalEnv) (float64, error) {
	seriesOf := func() ([]float64, error) {
		if len(c.Args) == 0 {
			return nil, fmt.Errorf("aiql: %s requires a series argument", c.Func)
		}
		ref, ok := c.Args[0].(*ast.VarRef)
		if !ok {
			return nil, fmt.Errorf("aiql: %s requires an aggregate name as its first argument", c.Func)
		}
		s := env.Series(ref.Name)
		if s == nil {
			return nil, fmt.Errorf("aiql: unknown aggregate %q in %s", ref.Name, c.Func)
		}
		return s, nil
	}
	argNum := func(i int) (float64, error) {
		if i >= len(c.Args) {
			return 0, fmt.Errorf("aiql: %s missing argument %d", c.Func, i+1)
		}
		return evalNum(c.Args[i], env)
	}
	switch c.Func {
	case "ABS":
		v, err := argNum(0)
		if err != nil {
			return 0, err
		}
		return math.Abs(v), nil
	case "SMA":
		s, err := seriesOf()
		if err != nil {
			return 0, err
		}
		n, err := argNum(1)
		if err != nil {
			n = 3 // SMA3 is the paper's default usage
		}
		return sma(s, int(n)), nil
	case "CMA":
		s, err := seriesOf()
		if err != nil {
			return 0, err
		}
		return sma(s, len(s)), nil
	case "WMA":
		s, err := seriesOf()
		if err != nil {
			return 0, err
		}
		n, err := argNum(1)
		if err != nil {
			n = 3
		}
		return wma(s, int(n)), nil
	case "EWMA":
		alpha, err := argNum(1)
		if err != nil {
			return 0, err
		}
		// Environments that maintain incremental EWMA state (the anomaly
		// executor) answer in O(1) per window; otherwise fold the series.
		if inc, ok := env.(ewmaEnv); ok && len(c.Args) > 0 {
			if ref, isRef := c.Args[0].(*ast.VarRef); isRef {
				if v, found := inc.EWMA(ref.Name, alpha); found {
					return v, nil
				}
			}
		}
		s, err := seriesOf()
		if err != nil {
			return 0, err
		}
		return ewma(s, alpha), nil
	}
	return 0, fmt.Errorf("aiql: unknown function %q", c.Func)
}

// sma is the simple moving average of the last n values.
func sma(s []float64, n int) float64 {
	if n <= 0 || len(s) == 0 {
		return 0
	}
	if n > len(s) {
		n = len(s)
	}
	sum := 0.0
	for _, v := range s[len(s)-n:] {
		sum += v
	}
	return sum / float64(n)
}

// wma is the linearly weighted moving average of the last n values, the
// most recent value carrying weight n.
func wma(s []float64, n int) float64 {
	if n <= 0 || len(s) == 0 {
		return 0
	}
	if n > len(s) {
		n = len(s)
	}
	var sum, wsum float64
	tail := s[len(s)-n:]
	for i, v := range tail {
		w := float64(i + 1)
		sum += w * v
		wsum += w
	}
	return sum / wsum
}

// ewma is the exponentially weighted moving average with smoothing factor
// alpha: e_0 = s_0, e_t = alpha*s_t + (1-alpha)*e_{t-1}.
func ewma(s []float64, alpha float64) float64 {
	if len(s) == 0 {
		return 0
	}
	e := s[0]
	for _, v := range s[1:] {
		e = alpha*v + (1-alpha)*e
	}
	return e
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
