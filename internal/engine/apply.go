package engine

import (
	"aiql/internal/pred"
	"aiql/internal/storage"
	"aiql/internal/types"
)

// applyJoin emulates the join discipline of graph query engines like
// Neo4j's Cypher runtime (paper Sec. 6.2.2: "Neo4j generally runs slower
// than PostgreSQL, due to the lack of support for efficient joins").
// Instead of fetching each pattern once and hash-joining, the engine
// anchors on the first pattern and, for every intermediate row, re-expands
// the next pattern through the store — an Apply operator. Equality
// relationships bind node values from the current row (index seeks);
// patterns related only temporally, or not at all, are re-expanded in full
// for every row, which is exactly the cartesian blow-up the paper observed
// for events with no common entities.
func (x *execution) applyJoin() (*tupleSet, error) {
	plan := x.plan
	applied := make([]bool, len(plan.Joins))
	base, err := x.runPattern(0, nil)
	if err != nil {
		return nil, err
	}
	acc := x.note(newTupleSet(0, base))
	for _, ji := range applicableJoins(plan.Joins, acc.has, applied) {
		acc = x.note(filterTuples(acc, plan, []int{ji}))
		applied[ji] = true
	}
	for i := 1; i < len(plan.Patterns); i++ {
		cover := func(p int) bool { return acc.has(p) || p == i }
		rels := applicableJoins(plan.Joins, cover, applied)

		out := &tupleSet{cols: make(map[int]int, len(acc.cols)+1)}
		for p, c := range acc.cols {
			out.cols[p] = c
		}
		out.cols[i] = len(acc.cols)

		for _, row := range acc.rows {
			pc := x.rowConstraint(rels, i, acc, row)
			ms, err := x.runPattern(i, pc)
			if err != nil {
				return nil, err
			}
			if err := x.bud.chargePairs(int64(len(ms)) + 1); err != nil {
				return nil, err
			}
			for k := range ms {
				ok := true
				for _, ji := range rels {
					j := &plan.Joins[ji]
					var ma, mb *storage.Match
					if j.A == i {
						ma, mb = &ms[k], acc.match(row, j.B)
					} else if j.B == i {
						ma, mb = acc.match(row, j.A), &ms[k]
					} else {
						ma, mb = acc.match(row, j.A), acc.match(row, j.B)
					}
					if !evalJoin(j, ma, mb) {
						ok = false
						break
					}
				}
				if !ok {
					continue
				}
				newRow := make([]storage.Match, len(row)+1)
				copy(newRow, row)
				newRow[len(row)] = ms[k]
				out.rows = append(out.rows, newRow)
				if err := x.bud.checkRows(len(out.rows)); err != nil {
					return nil, err
				}
			}
		}
		for _, ji := range rels {
			applied[ji] = true
		}
		acc = x.note(out)
	}
	return acc, nil
}

// rowConstraint builds the per-row binding an Apply operator passes into
// the inner expansion: equality relationships seed index seeks, temporal
// relationships narrow the expansion's time bounds.
func (x *execution) rowConstraint(rels []int, target int, acc *tupleSet, row []storage.Match) *patternConstraint {
	var merged *patternConstraint
	for _, ji := range rels {
		j := &x.plan.Joins[ji]
		var known int
		switch {
		case j.A == target && acc.has(j.B):
			known = j.B
		case j.B == target && acc.has(j.A):
			known = j.A
		default:
			continue
		}
		m := acc.match(row, known)
		pc := x.constraintFromMatches(j, known, 1, func(int) *storage.Match { return m })
		merged = mergeConstraints(merged, pc)
	}
	return merged
}

// mergeConstraints conjoins two pattern constraints.
func mergeConstraints(a, b *patternConstraint) *patternConstraint {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := &patternConstraint{
		subjAllowed: intersectIDSets(a.subjAllowed, b.subjAllowed),
		objAllowed:  intersectIDSets(a.objAllowed, b.objAllowed),
		subjExtra:   andPreds(a.subjExtra, b.subjExtra),
		objExtra:    andPreds(a.objExtra, b.objExtra),
	}
	switch {
	case a.window == nil:
		out.window = b.window
	case b.window == nil:
		out.window = a.window
	default:
		w := a.window.Intersect(*b.window)
		out.window = &w
	}
	return out
}

func intersectIDSets(a, b map[types.EntityID]struct{}) map[types.EntityID]struct{} {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := make(map[types.EntityID]struct{})
	for id := range a {
		if _, ok := b[id]; ok {
			out[id] = struct{}{}
		}
	}
	return out
}

func andPreds(a, b pred.Pred) pred.Pred {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return pred.AndOf(a, b)
}
