package engine

import (
	"errors"
	"strconv"
	"strings"

	"aiql/internal/pred"
	"aiql/internal/storage"
	"aiql/internal/types"
)

// ErrTooLarge is returned when an execution exceeds the engine's tuple or
// join-pair budget — the analogue of the baselines' one-hour timeouts in
// the paper's evaluation.
var ErrTooLarge = errors.New("aiql: intermediate result exceeds the configured budget")

// tupleSet is the engine's intermediate result representation (the values
// of Algorithm 1's map M): rows of event matches covering a subset of the
// plan's patterns.
type tupleSet struct {
	// cols maps pattern index -> column position in each row.
	cols map[int]int
	rows [][]storage.Match
}

func newTupleSet(patternIdx int, matches []storage.Match) *tupleSet {
	ts := &tupleSet{cols: map[int]int{patternIdx: 0}, rows: make([][]storage.Match, len(matches))}
	for i := range matches {
		ts.rows[i] = []storage.Match{matches[i]}
	}
	return ts
}

func (ts *tupleSet) has(pattern int) bool {
	_, ok := ts.cols[pattern]
	return ok
}

func (ts *tupleSet) match(row []storage.Match, pattern int) *storage.Match {
	return &row[ts.cols[pattern]]
}

// sideValue extracts the join value of a match for one side/attr pair.
func sideValue(m *storage.Match, side Side, attr string) (string, bool) {
	var ent *types.Entity
	if side == SideSubject {
		ent = m.Subj
	} else {
		ent = m.Obj
	}
	if ent == nil {
		return "", false
	}
	return ent.Attr(attr)
}

// evalJoin evaluates a compiled relationship between two concrete matches.
func evalJoin(j *Join, ma, mb *storage.Match) bool {
	switch j.Kind {
	case JoinAttr:
		av, aok := sideValue(ma, j.ASide, j.AAttr)
		bv, bok := sideValue(mb, j.BSide, j.BAttr)
		if !aok || !bok {
			return false
		}
		return compareValues(av, bv, j.Op)
	case JoinTemporal:
		ta, tb := ma.Event, mb.Event
		switch j.TempKind {
		case "before":
			if !ta.Before(tb) {
				return false
			}
			if j.HiMs > 0 {
				d := tb.Start - ta.Start
				return d >= j.LoMs && d <= j.HiMs
			}
			return true
		case "within":
			if j.HiMs <= 0 {
				return true
			}
			d := tb.Start - ta.Start
			if d < 0 {
				d = -d
			}
			return d >= j.LoMs && d <= j.HiMs
		}
	}
	return false
}

func compareValues(a, b string, op pred.CmpOp) bool {
	if op == pred.CmpEq {
		return a == b
	}
	if op == pred.CmpNe {
		return a != b
	}
	var cmp int
	an, aerr := strconv.ParseFloat(a, 64)
	bn, berr := strconv.ParseFloat(b, 64)
	if aerr == nil && berr == nil {
		switch {
		case an < bn:
			cmp = -1
		case an > bn:
			cmp = 1
		}
	} else {
		cmp = strings.Compare(a, b)
	}
	switch op {
	case pred.CmpLt:
		return cmp < 0
	case pred.CmpLe:
		return cmp <= 0
	case pred.CmpGt:
		return cmp > 0
	case pred.CmpGe:
		return cmp >= 0
	}
	return false
}

// budget tracks tuple growth across an execution so that runaway joins
// fail fast instead of exhausting memory.
type budget struct {
	maxTuples int
	maxPairs  int64
	pairs     int64
	noHash    bool
}

func (b *budget) chargePairs(n int64) error {
	b.pairs += n
	if b.maxPairs > 0 && b.pairs > b.maxPairs {
		return ErrTooLarge
	}
	return nil
}

func (b *budget) checkRows(n int) error {
	if b.maxTuples > 0 && n > b.maxTuples {
		return ErrTooLarge
	}
	return nil
}

// applicableJoins returns the joins whose two patterns are both covered by
// the column sets (used by the baselines' late filtering).
func applicableJoins(joins []Join, has func(int) bool, applied []bool) []int {
	var out []int
	for i := range joins {
		if applied[i] {
			continue
		}
		if has(joins[i].A) && has(joins[i].B) {
			out = append(out, i)
		}
	}
	return out
}

// joinTuples combines two disjoint tuple sets, filtering by the given
// relationships (indexes into plan.Joins). Equality attribute joins use a
// hash join; everything else falls back to a nested loop.
func joinTuples(ta, tb *tupleSet, plan *Plan, relIdx []int, bud *budget) (*tupleSet, error) {
	out := &tupleSet{cols: make(map[int]int, len(ta.cols)+len(tb.cols))}
	for p, c := range ta.cols {
		out.cols[p] = c
	}
	width := len(ta.cols)
	for p, c := range tb.cols {
		out.cols[p] = width + c
	}

	// Pick one equality join as the hash key if available.
	hashRel := -1
	if !bud.noHash {
		for _, ri := range relIdx {
			j := &plan.Joins[ri]
			if j.Kind == JoinAttr && j.Op == pred.CmpEq {
				hashRel = ri
				break
			}
		}
	}

	check := func(rowA, rowB []storage.Match) bool {
		for _, ri := range relIdx {
			j := &plan.Joins[ri]
			ma := pickMatch(ta, tb, rowA, rowB, j.A)
			mb := pickMatch(ta, tb, rowA, rowB, j.B)
			if !evalJoin(j, ma, mb) {
				return false
			}
		}
		return true
	}

	emit := func(rowA, rowB []storage.Match) error {
		row := make([]storage.Match, 0, len(rowA)+len(rowB))
		row = append(row, rowA...)
		row = append(row, rowB...)
		out.rows = append(out.rows, row)
		return bud.checkRows(len(out.rows))
	}

	if hashRel >= 0 {
		j := &plan.Joins[hashRel]
		// Determine which input holds side A of the hash relationship.
		aInA := ta.has(j.A)
		keyOf := func(set *tupleSet, row []storage.Match, patt int, side Side, attr string) (string, bool) {
			return sideValue(set.match(row, patt), side, attr)
		}
		index := make(map[string][]int, len(tb.rows))
		for i, row := range tb.rows {
			var k string
			var ok bool
			if aInA {
				k, ok = keyOf(tb, row, j.B, j.BSide, j.BAttr)
			} else {
				k, ok = keyOf(tb, row, j.A, j.ASide, j.AAttr)
			}
			if ok {
				index[k] = append(index[k], i)
			}
		}
		for _, rowA := range ta.rows {
			var k string
			var ok bool
			if aInA {
				k, ok = keyOf(ta, rowA, j.A, j.ASide, j.AAttr)
			} else {
				k, ok = keyOf(ta, rowA, j.B, j.BSide, j.BAttr)
			}
			if !ok {
				continue
			}
			hits := index[k]
			if err := bud.chargePairs(int64(len(hits))); err != nil {
				return nil, err
			}
			for _, bi := range hits {
				if check(rowA, tb.rows[bi]) {
					if err := emit(rowA, tb.rows[bi]); err != nil {
						return nil, err
					}
				}
			}
		}
		return out, nil
	}

	// Nested loop.
	if err := bud.chargePairs(int64(len(ta.rows)) * int64(len(tb.rows))); err != nil {
		return nil, err
	}
	for _, rowA := range ta.rows {
		for _, rowB := range tb.rows {
			if check(rowA, rowB) {
				if err := emit(rowA, rowB); err != nil {
					return nil, err
				}
			}
		}
	}
	return out, nil
}

func pickMatch(ta, tb *tupleSet, rowA, rowB []storage.Match, pattern int) *storage.Match {
	if ta.has(pattern) {
		return ta.match(rowA, pattern)
	}
	return tb.match(rowB, pattern)
}

// filterTuples keeps the rows of a tuple set satisfying the given
// relationships (both patterns of each relationship must be in the set).
func filterTuples(ts *tupleSet, plan *Plan, relIdx []int) *tupleSet {
	out := &tupleSet{cols: ts.cols, rows: ts.rows[:0:0]}
	for _, row := range ts.rows {
		ok := true
		for _, ri := range relIdx {
			j := &plan.Joins[ri]
			if !evalJoin(j, ts.match(row, j.A), ts.match(row, j.B)) {
				ok = false
				break
			}
		}
		if ok {
			out.rows = append(out.rows, row)
		}
	}
	return out
}
