package engine

import (
	"context"
	"errors"
	"strconv"
	"strings"

	"aiql/internal/pred"
	"aiql/internal/storage"
	"aiql/internal/types"
)

// ErrTooLarge is returned when an execution exceeds the engine's tuple or
// join-pair budget — the analogue of the baselines' one-hour timeouts in
// the paper's evaluation.
var ErrTooLarge = errors.New("aiql: intermediate result exceeds the configured budget")

// tupleSet is the engine's intermediate result representation (the values
// of Algorithm 1's map M): rows of event matches covering a subset of the
// plan's patterns.
type tupleSet struct {
	// cols maps pattern index -> column position in each row.
	cols map[int]int
	rows [][]storage.Match
}

func newTupleSet(patternIdx int, matches []storage.Match) *tupleSet {
	ts := &tupleSet{cols: map[int]int{patternIdx: 0}, rows: make([][]storage.Match, len(matches))}
	for i := range matches {
		ts.rows[i] = []storage.Match{matches[i]}
	}
	return ts
}

func (ts *tupleSet) has(pattern int) bool {
	_, ok := ts.cols[pattern]
	return ok
}

func (ts *tupleSet) match(row []storage.Match, pattern int) *storage.Match {
	return &row[ts.cols[pattern]]
}

// sideValue extracts the join value of a match for one side/attr pair.
func sideValue(m *storage.Match, side Side, attr string) (string, bool) {
	var ent *types.Entity
	if side == SideSubject {
		ent = m.Subj
	} else {
		ent = m.Obj
	}
	if ent == nil {
		return "", false
	}
	return ent.Attr(attr)
}

// sideEntity picks a match's entity for one side.
func sideEntity(m *storage.Match, side Side) *types.Entity {
	if side == SideSubject {
		return m.Subj
	}
	return m.Obj
}

// evalJoin evaluates a compiled relationship between two concrete matches.
func evalJoin(j *Join, ma, mb *storage.Match) bool {
	switch j.Kind {
	case JoinAttr:
		// Entity-id equality — every entity-variable reuse compiles to one —
		// compares the ids numerically instead of formatting both to
		// strings: same verdict, no allocation on the join hot path.
		if j.Op == pred.CmpEq && j.AAttr == types.AttrID && j.BAttr == types.AttrID {
			ea, eb := sideEntity(ma, j.ASide), sideEntity(mb, j.BSide)
			if ea == nil || eb == nil {
				return false
			}
			return ea.ID == eb.ID
		}
		av, aok := sideValue(ma, j.ASide, j.AAttr)
		bv, bok := sideValue(mb, j.BSide, j.BAttr)
		if !aok || !bok {
			return false
		}
		return compareValues(av, bv, j.Op)
	case JoinTemporal:
		ta, tb := ma.Event, mb.Event
		switch j.TempKind {
		case "before":
			if !ta.Before(tb) {
				return false
			}
			if j.HiMs > 0 {
				d := tb.Start - ta.Start
				return d >= j.LoMs && d <= j.HiMs
			}
			return true
		case "within":
			if j.HiMs <= 0 {
				return true
			}
			d := tb.Start - ta.Start
			if d < 0 {
				d = -d
			}
			return d >= j.LoMs && d <= j.HiMs
		}
	}
	return false
}

func compareValues(a, b string, op pred.CmpOp) bool {
	if op == pred.CmpEq {
		return a == b
	}
	if op == pred.CmpNe {
		return a != b
	}
	var cmp int
	an, aerr := strconv.ParseFloat(a, 64)
	bn, berr := strconv.ParseFloat(b, 64)
	if aerr == nil && berr == nil {
		switch {
		case an < bn:
			cmp = -1
		case an > bn:
			cmp = 1
		}
	} else {
		cmp = strings.Compare(a, b)
	}
	switch op {
	case pred.CmpLt:
		return cmp < 0
	case pred.CmpLe:
		return cmp <= 0
	case pred.CmpGt:
		return cmp > 0
	case pred.CmpGe:
		return cmp >= 0
	}
	return false
}

// budget tracks tuple growth across an execution so that runaway joins
// fail fast instead of exhausting memory. It doubles as the join loops'
// cancellation point: chargePairs is called at least once per outer row or
// per streamed match, so a canceled context aborts long joins promptly.
type budget struct {
	maxTuples int
	maxPairs  int64
	pairs     int64
	noHash    bool
	ctx       context.Context
}

func (b *budget) chargePairs(n int64) error {
	b.pairs += n
	if b.maxPairs > 0 && b.pairs > b.maxPairs {
		return ErrTooLarge
	}
	if b.ctx != nil {
		if err := b.ctx.Err(); err != nil {
			return err
		}
	}
	return nil
}

func (b *budget) checkRows(n int) error {
	if b.maxTuples > 0 && n > b.maxTuples {
		return ErrTooLarge
	}
	return nil
}

// pickHashRel selects the first equality attribute relationship in relIdx
// accepted by usable, or -1 — the shared hash-join key selection of
// joinTuples and joinStream. A change to hash-join eligibility belongs
// here so the materialized and streamed join paths cannot diverge.
func pickHashRel(plan *Plan, relIdx []int, noHash bool, usable func(*Join) bool) int {
	if noHash {
		return -1
	}
	for _, ri := range relIdx {
		j := &plan.Joins[ri]
		if j.Kind == JoinAttr && j.Op == pred.CmpEq && usable(j) {
			return ri
		}
	}
	return -1
}

// applicableJoins returns the joins whose two patterns are both covered by
// the column sets (used by the baselines' late filtering).
func applicableJoins(joins []Join, has func(int) bool, applied []bool) []int {
	var out []int
	for i := range joins {
		if applied[i] {
			continue
		}
		if has(joins[i].A) && has(joins[i].B) {
			out = append(out, i)
		}
	}
	return out
}

// joinTuples combines two disjoint tuple sets, filtering by the given
// relationships (indexes into plan.Joins). Equality attribute joins use a
// hash join; everything else falls back to a nested loop.
func joinTuples(ta, tb *tupleSet, plan *Plan, relIdx []int, bud *budget) (*tupleSet, error) {
	out := &tupleSet{cols: make(map[int]int, len(ta.cols)+len(tb.cols))}
	for p, c := range ta.cols {
		out.cols[p] = c
	}
	width := len(ta.cols)
	for p, c := range tb.cols {
		out.cols[p] = width + c
	}

	// Pick one equality join as the hash key if available.
	hashRel := pickHashRel(plan, relIdx, bud.noHash, func(*Join) bool { return true })

	check := func(rowA, rowB []storage.Match) bool {
		for _, ri := range relIdx {
			j := &plan.Joins[ri]
			ma := pickMatch(ta, tb, rowA, rowB, j.A)
			mb := pickMatch(ta, tb, rowA, rowB, j.B)
			if !evalJoin(j, ma, mb) {
				return false
			}
		}
		return true
	}

	emit := func(rowA, rowB []storage.Match) error {
		row := make([]storage.Match, 0, len(rowA)+len(rowB))
		row = append(row, rowA...)
		row = append(row, rowB...)
		out.rows = append(out.rows, row)
		return bud.checkRows(len(out.rows))
	}

	if hashRel >= 0 {
		j := &plan.Joins[hashRel]
		// Determine which input holds side A of the hash relationship.
		aInA := ta.has(j.A)
		keyOf := func(set *tupleSet, row []storage.Match, patt int, side Side, attr string) (string, bool) {
			return sideValue(set.match(row, patt), side, attr)
		}
		index := make(map[string][]int, len(tb.rows))
		for i, row := range tb.rows {
			var k string
			var ok bool
			if aInA {
				k, ok = keyOf(tb, row, j.B, j.BSide, j.BAttr)
			} else {
				k, ok = keyOf(tb, row, j.A, j.ASide, j.AAttr)
			}
			if ok {
				index[k] = append(index[k], i)
			}
		}
		for _, rowA := range ta.rows {
			var k string
			var ok bool
			if aInA {
				k, ok = keyOf(ta, rowA, j.A, j.ASide, j.AAttr)
			} else {
				k, ok = keyOf(ta, rowA, j.B, j.BSide, j.BAttr)
			}
			if !ok {
				continue
			}
			hits := index[k]
			if err := bud.chargePairs(int64(len(hits))); err != nil {
				return nil, err
			}
			for _, bi := range hits {
				if check(rowA, tb.rows[bi]) {
					if err := emit(rowA, tb.rows[bi]); err != nil {
						return nil, err
					}
				}
			}
		}
		return out, nil
	}

	// Nested loop.
	if err := bud.chargePairs(int64(len(ta.rows)) * int64(len(tb.rows))); err != nil {
		return nil, err
	}
	for _, rowA := range ta.rows {
		for _, rowB := range tb.rows {
			if check(rowA, rowB) {
				if err := emit(rowA, rowB); err != nil {
					return nil, err
				}
			}
		}
	}
	return out, nil
}

// joinStream extends a materialized tuple set by one pattern whose matches
// are *streamed* from the backend instead of materialized first — the
// cursor-era form of Algorithm 1's constrained execution. The scan only
// starts if the constraining tuple set has rows at all ("stop pulling
// batches as soon as the constraining tuple set is exhausted" degenerates
// to never pulling any); budget exhaustion and context cancellation abort
// the stream mid-flight, before the remaining batches are even produced.
//
// Output rows preserve the materialized join's order (constraining-set
// major, stream order within a row) so plans without an explicit sort stay
// deterministic across the refactor: streamed matches are parked in an
// arena and per-row hit lists, and rows are emitted by walking ts in order.
func (x *execution) joinStream(ts *tupleSet, pattern int, pc *patternConstraint, relIdx []int) (*tupleSet, error) {
	plan, bud := x.plan, x.bud
	span := x.span.Child("join")
	span.Set("kind", "stream")
	pairsBefore := bud.pairs
	out := &tupleSet{cols: make(map[int]int, len(ts.cols)+1)}
	defer func() {
		span.Add("rows_in", int64(len(ts.rows)))
		span.Add("rows_out", int64(len(out.rows)))
		span.Add("pairs", bud.pairs-pairsBefore)
		span.End()
	}()
	for p, c := range ts.cols {
		out.cols[p] = c
	}
	width := len(ts.cols)
	out.cols[pattern] = width

	// An empty constraining set makes the join trivially empty: account the
	// data query in the diagnostics but never open the scan at all.
	if len(ts.rows) == 0 {
		x.queries++
		return out, nil
	}
	cur := x.scanPattern(pattern, pc)
	defer cur.Close()

	check := func(row []storage.Match, m *storage.Match) bool {
		for _, ri := range relIdx {
			j := &plan.Joins[ri]
			ma, mb := m, m
			if j.A != pattern {
				ma = ts.match(row, j.A)
			}
			if j.B != pattern {
				mb = ts.match(row, j.B)
			}
			if !evalJoin(j, ma, mb) {
				return false
			}
		}
		return true
	}

	// Hash path: an equality relationship linking the streamed pattern to a
	// column of ts keys an index over ts rows; each streamed match probes
	// it. Self-relationships and ts-internal relationships cannot key the
	// probe (they do not span the two inputs).
	hashRel := pickHashRel(plan, relIdx, bud.noHash, func(j *Join) bool {
		return (j.A == pattern) != (j.B == pattern)
	})
	var mSide, tsSide Side
	var mAttr, tsAttr string
	tsPatt := -1
	if hashRel >= 0 {
		j := &plan.Joins[hashRel]
		if j.A == pattern {
			mSide, mAttr = j.ASide, j.AAttr
			tsPatt, tsSide, tsAttr = j.B, j.BSide, j.BAttr
		} else {
			mSide, mAttr = j.BSide, j.BAttr
			tsPatt, tsSide, tsAttr = j.A, j.ASide, j.AAttr
		}
	}
	var index map[string][]int
	if hashRel >= 0 {
		index = make(map[string][]int, len(ts.rows))
		for i, row := range ts.rows {
			if v, ok := sideValue(ts.match(row, tsPatt), tsSide, tsAttr); ok {
				index[v] = append(index[v], i)
			}
		}
	}

	// arena parks each streamed match that joined at least one row; hits[i]
	// indexes the arena per ts row, preserving the output order.
	var arena []storage.Match
	hits := make([][]int32, len(ts.rows))
	total := 0
	join := func(m *storage.Match, rows []int) error {
		ai := int32(-1)
		for _, i := range rows {
			if !check(ts.rows[i], m) {
				continue
			}
			if ai < 0 {
				arena = append(arena, *m)
				ai = int32(len(arena) - 1)
			}
			hits[i] = append(hits[i], ai)
			total++
			if err := bud.checkRows(total); err != nil {
				return err
			}
		}
		return nil
	}
	var allRows []int
	if hashRel < 0 {
		allRows = make([]int, len(ts.rows))
		for i := range allRows {
			allRows[i] = i
		}
	}

	batch := make([]storage.Match, storage.ScanBatchSize)
	for {
		n := cur.Next(batch)
		if n == 0 {
			break
		}
		for k := 0; k < n; k++ {
			m := &batch[k]
			if hashRel >= 0 {
				v, ok := sideValue(m, mSide, mAttr)
				if !ok {
					continue
				}
				rows := index[v]
				if err := bud.chargePairs(int64(len(rows)) + 1); err != nil {
					return nil, err
				}
				if err := join(m, rows); err != nil {
					return nil, err
				}
			} else {
				if err := bud.chargePairs(int64(len(ts.rows))); err != nil {
					return nil, err
				}
				if err := join(m, allRows); err != nil {
					return nil, err
				}
			}
		}
	}
	if err := cur.Err(); err != nil {
		return nil, err
	}

	out.rows = make([][]storage.Match, 0, total)
	for i, row := range ts.rows {
		for _, ai := range hits[i] {
			nr := make([]storage.Match, len(row)+1)
			copy(nr, row)
			nr[len(row)] = arena[ai]
			out.rows = append(out.rows, nr)
		}
	}
	return out, nil
}

func pickMatch(ta, tb *tupleSet, rowA, rowB []storage.Match, pattern int) *storage.Match {
	if ta.has(pattern) {
		return ta.match(rowA, pattern)
	}
	return tb.match(rowB, pattern)
}

// filterTuples keeps the rows of a tuple set satisfying the given
// relationships (both patterns of each relationship must be in the set).
func filterTuples(ts *tupleSet, plan *Plan, relIdx []int) *tupleSet {
	out := &tupleSet{cols: ts.cols, rows: ts.rows[:0:0]}
	for _, row := range ts.rows {
		ok := true
		for _, ri := range relIdx {
			j := &plan.Joins[ri]
			if !evalJoin(j, ts.match(row, j.A), ts.match(row, j.B)) {
				ok = false
				break
			}
		}
		if ok {
			out.rows = append(out.rows, row)
		}
	}
	return out
}
