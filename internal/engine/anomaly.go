package engine

import (
	"fmt"
	"sort"
	"strings"

	"aiql/internal/storage"
	"aiql/internal/timeutil"
)

// groupState carries the aggregate history of one group key across sliding
// windows; series are oldest-first and include the current window as the
// last element while that window is being evaluated. EWMA values are folded
// incrementally per (alias, alpha) so long window sweeps stay linear.
type groupState struct {
	keyVals []string
	series  map[string][]float64
	ewma    map[ewmaKey]*ewmaState
	present bool // had events in the current window
}

type ewmaKey struct {
	name  string
	alpha float64
}

type ewmaState struct {
	val float64
	n   int // number of series elements folded in
}

// windowEnv exposes one group's aggregate history to the having evaluator.
// The last element of each series is the current window.
type windowEnv struct {
	g *groupState
}

func (e *windowEnv) Value(name string, hist int) (float64, bool) {
	s, ok := e.g.series[name]
	if !ok {
		return 0, false
	}
	idx := len(s) - 1 - hist
	if idx < 0 {
		return 0, false
	}
	return s[idx], true
}

func (e *windowEnv) Series(name string) []float64 { return e.g.series[name] }

// EWMA implements the incremental exponentially weighted moving average:
// the state folds exactly the series prefix it has seen, so each window
// adds O(1) work per (alias, alpha).
func (e *windowEnv) EWMA(name string, alpha float64) (float64, bool) {
	s, ok := e.g.series[name]
	if !ok || len(s) == 0 {
		return 0, false
	}
	k := ewmaKey{name: name, alpha: alpha}
	st := e.g.ewma[k]
	if st == nil {
		st = &ewmaState{}
		e.g.ewma[k] = st
	}
	for ; st.n < len(s); st.n++ {
		if st.n == 0 {
			st.val = s[0]
		} else {
			st.val = alpha*s[st.n] + (1-alpha)*st.val
		}
	}
	return st.val, true
}

// runAnomaly executes an anomaly query (paper Sec. 4.3): a single event
// pattern aggregated over a sliding time window, with per-group history
// states (freq[1], freq[2], ...) and moving-average built-ins available to
// the having clause. The engine "maintains the aggregate results as
// historical states and performs the filtering based on the historical
// states" (paper Sec. 5.1).
func (e *Engine) runAnomaly(exec *execution) (*Result, error) {
	plan := exec.plan
	if len(plan.Patterns) != 1 {
		return nil, fmt.Errorf("aiql: anomaly queries aggregate a single event pattern, found %d", len(plan.Patterns))
	}
	matches, err := exec.runPattern(0, nil)
	if err != nil {
		return nil, err
	}
	sort.Slice(matches, func(i, j int) bool { return matches[i].Event.Start < matches[j].Event.Start })

	ts := newTupleSet(0, matches)

	groups := make(map[string]*groupState)
	var groupOrder []string

	aggItems := make([]int, 0, len(plan.Return.Items))
	for i := range plan.Return.Items {
		if plan.Return.Items[i].Agg != nil {
			aggItems = append(aggItems, i)
		}
	}

	res := &Result{Columns: append([]string{"window"}, plan.Columns()...)}
	res.DataQueries = exec.queries

	// Group keys are precomputed once per match, not once per overlapping
	// window.
	keys := make([]string, len(matches))
	keyVals := make([][]string, len(matches))
	for i := range matches {
		vals := make([]string, len(plan.GroupBy))
		for k, gref := range plan.GroupBy {
			vals[k] = colValue(ts, ts.rows[i], gref)
		}
		keyVals[i] = vals
		keys[i] = strings.Join(vals, "\x00")
	}

	lo, hi := 0, 0
	winRows := make(map[string][][]storage.Match)
	for wStart := plan.Window.From; wStart < plan.Window.To; wStart += plan.Slide.Step {
		if err := exec.checkCtx(); err != nil {
			return nil, err
		}
		wEnd := wStart + plan.Slide.Length
		// Advance the two pointers over the time-sorted matches.
		for lo < len(matches) && matches[lo].Event.Start < wStart {
			lo++
		}
		if hi < lo {
			hi = lo
		}
		for hi < len(matches) && matches[hi].Event.Start < wEnd {
			hi++
		}

		// Partition this window's matches by group key.
		for _, g := range groups {
			g.present = false
		}
		clear(winRows)
		for i := lo; i < hi; i++ {
			key := keys[i]
			if _, ok := groups[key]; !ok {
				groups[key] = &groupState{
					keyVals: keyVals[i],
					series:  make(map[string][]float64),
					ewma:    make(map[ewmaKey]*ewmaState),
				}
				groupOrder = append(groupOrder, key)
			}
			groups[key].present = true
			winRows[key] = append(winRows[key], ts.rows[i])
		}

		// Compute aggregates for every known group (absent groups record 0,
		// so moving averages see the quiet windows too) and evaluate the
		// having clause for groups active in this window.
		for _, key := range groupOrder {
			g := groups[key]
			env := &windowEnv{g: g}
			for _, ii := range aggItems {
				item := &plan.Return.Items[ii]
				v := computeAgg(item.Agg, ts, winRows[key])
				g.series[item.Name] = append(g.series[item.Name], v)
			}
			if !g.present {
				continue
			}
			keep := true
			if plan.Having != nil {
				ok, err := evalBool(plan.Having, env)
				if err != nil {
					return nil, err
				}
				keep = ok
			}
			if keep {
				out := make([]string, 0, len(plan.Return.Items)+1)
				out = append(out, timeutil.FormatMillis(wStart))
				for i := range plan.Return.Items {
					item := &plan.Return.Items[i]
					if item.Agg != nil {
						s := g.series[item.Name]
						out = append(out, formatNum(s[len(s)-1]))
					} else {
						out = append(out, colValue(ts, winRows[key][0], item.Ref))
					}
				}
				res.Rows = append(res.Rows, out)
			}
		}
	}
	if plan.Top > 0 && len(res.Rows) > plan.Top {
		res.Rows = res.Rows[:plan.Top]
	}
	return res, nil
}
