package engine

import (
	"fmt"

	"aiql/internal/storage"
)

// Streamable reports whether the plan can run as a standing continuous
// query: one whose matches can be produced incrementally, event by event,
// without ever seeing "the whole result". Aggregations, sliding windows,
// group-by/having, count, sort and top all need the complete result set (or
// a closed window over it) before a single output row is final, so they are
// rejected; plain pattern/join plans — with or without distinct — stream.
// A nil return means the plan is streamable.
func (p *Plan) Streamable() error {
	switch {
	case p.Slide != nil:
		return fmt.Errorf("aiql: sliding-window (anomaly) queries cannot run as standing rules")
	case p.HasAggregation() || len(p.GroupBy) > 0 || p.Having != nil:
		return fmt.Errorf("aiql: aggregating queries cannot run as standing rules")
	case p.Return.Count:
		return fmt.Errorf("aiql: count queries cannot run as standing rules")
	case len(p.SortBy) > 0 || p.Top > 0:
		return fmt.Errorf("aiql: sort/top queries cannot run as standing rules (an unbounded stream has no final order)")
	}
	return nil
}

// ProjectRow projects one complete joined tuple — row[i] holding pattern
// i's match — into the plan's return columns, exactly as the batch
// projection would. Valid only for streamable plans (no aggregates); the
// continuous-query matcher uses it so stream emissions and batch rows are
// rendered by the same rules.
func (p *Plan) ProjectRow(row []storage.Match) []string {
	out := make([]string, len(p.Return.Items))
	for i := range p.Return.Items {
		ref := p.Return.Items[i].Ref
		if ref == nil {
			continue // unreachable for streamable plans
		}
		m := &row[ref.Pattern]
		if ref.IsEvent {
			out[i], _ = m.Event.Attr(ref.Attr)
		} else {
			out[i], _ = sideValue(m, ref.Side, ref.Attr)
		}
	}
	return out
}

// Eval evaluates the compiled relationship between two concrete matches —
// the exported face of the engine's join predicate, shared with the stream
// matcher so incremental joins cannot drift from batch joins.
func (j *Join) Eval(ma, mb *storage.Match) bool {
	return evalJoin(j, ma, mb)
}
