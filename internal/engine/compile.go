// Package engine implements the AIQL query execution engine (paper Sec. 5):
// query-context compilation, per-pattern data query synthesis, the
// relationship-based scheduler of Algorithm 1 plus the fetch-and-filter and
// one-big-join baselines, temporal parallelization, dependency query
// rewriting, and the sliding-window anomaly executor.
package engine

import (
	"fmt"
	"strconv"
	"strings"

	"aiql/internal/ast"
	"aiql/internal/pred"
	"aiql/internal/timeutil"
	"aiql/internal/types"
)

// CompileError reports a semantic error found while compiling a parsed
// query into an executable plan.
type CompileError struct {
	Pos ast.Pos
	Msg string
}

func (e *CompileError) Error() string {
	return fmt.Sprintf("aiql:%d:%d: %s", e.Pos.Line, e.Pos.Col, e.Msg)
}

func cerrf(pos ast.Pos, format string, args ...any) error {
	return &CompileError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// Side identifies the subject or object position of an event pattern.
type Side uint8

const (
	SideSubject Side = iota
	SideObject
)

func (s Side) String() string {
	if s == SideSubject {
		return "subject"
	}
	return "object"
}

// EntitySpec is the compiled form of an <entity> reference.
type EntitySpec struct {
	Type types.EntityType
	ID   string // variable name; synthesized when the query omitted it
	Pred pred.Pred
}

// PatternPlan is the compiled form of one event pattern — the unit from
// which the engine synthesizes data queries (paper Fig. 3).
type PatternPlan struct {
	Idx     int
	EvtID   string
	Subj    EntitySpec
	Obj     EntitySpec
	Ops     types.OpSet
	EvtPred pred.Pred
	Window  timeutil.Window
	Agents  []int
	// Score is the pruning score: the number of constraints the pattern
	// carries (Algorithm 1, step 1).
	Score int
}

// JoinKind distinguishes attribute from temporal relationships.
type JoinKind uint8

const (
	JoinAttr JoinKind = iota
	JoinTemporal
)

// Join is a compiled relationship between two patterns.
type Join struct {
	Kind JoinKind
	A, B int // pattern indexes

	// Attribute relationship: value of A-side attr OP B-side attr.
	ASide Side
	AAttr string
	Op    pred.CmpOp
	BSide Side
	BAttr string

	// Temporal relationship: tB - tA must lie in [LoMs, HiMs] for
	// "before" (A before B); "within" bounds |tB - tA| <= HiMs.
	TempKind string // "before" | "within" ("after" is normalized to before)
	LoMs     int64
	HiMs     int64 // 0 means unbounded for before/after
}

// ReturnSpec is the compiled return clause.
type ReturnSpec struct {
	Count    bool
	Distinct bool
	Items    []ReturnItem
}

// ReturnItem is one compiled result column.
type ReturnItem struct {
	Name string // output column name (alias or rendered expression)
	Ref  *ColRef
	Agg  *AggSpec
}

// ColRef projects an attribute of a pattern's entity or event.
type ColRef struct {
	Pattern int
	Side    Side
	Attr    string
	IsEvent bool // reference to the event itself (evt1.optype)
}

// AggSpec is a compiled aggregation.
type AggSpec struct {
	Func     string // count, avg, sum, min, max
	Distinct bool
	Arg      *ColRef // nil for count(*) style
}

// SlideSpec is the compiled sliding window.
type SlideSpec struct {
	Length int64
	Step   int64
}

// Plan is the compiled, executable form of an AIQL query — the "query
// context" of the paper's architecture (Fig. 2).
type Plan struct {
	Patterns []*PatternPlan
	Joins    []Join
	Return   ReturnSpec
	GroupBy  []*ColRef
	Having   ast.Expr
	SortBy   []int // indexes into Return.Items
	SortDesc bool
	Top      int
	Slide    *SlideSpec
	Window   timeutil.Window
	Agents   []int

	// entityVars maps each entity variable to its occurrences, used by
	// projection and by the implicit joins from entity-ID reuse.
	entityVars map[string][]varOcc
	evtVars    map[string]int // event id -> pattern index
	aliases    map[string]int // return alias -> item index
}

type varOcc struct {
	pattern int
	side    Side
	typ     types.EntityType
}

// Compile lowers a parsed query to a plan, applying AIQL's context-aware
// syntax shortcuts: attribute inference, optional IDs, and entity-ID reuse
// (paper Sec. 4.1). Dependency queries are first rewritten to multievent
// form (paper Sec. 5.1).
func Compile(q *ast.Query) (*Plan, error) {
	multi := q.Multi
	if q.Dep != nil {
		var err error
		multi, err = RewriteDependency(q.Dep)
		if err != nil {
			return nil, err
		}
	}
	if multi == nil {
		return nil, fmt.Errorf("aiql: query has no body")
	}

	p := &Plan{
		entityVars: make(map[string][]varOcc),
		evtVars:    make(map[string]int),
		aliases:    make(map[string]int),
	}

	// Globals: agent constraints, window, sliding window.
	var slide SlideSpec
	var globalCstrs []ast.AttrExpr
	for i := range q.Globals {
		g := &q.Globals[i]
		switch {
		case g.Window != nil:
			w, err := resolveWindow(g.Window)
			if err != nil {
				return nil, err
			}
			p.Window = p.Window.Intersect(w)
		case g.Slide != nil:
			if g.Slide.Length > 0 {
				slide.Length = g.Slide.Length
			}
			if g.Slide.Step > 0 {
				slide.Step = g.Slide.Step
			}
		case g.Cstr != nil:
			if ag, ok := agentConstraint(g.Cstr); ok {
				p.Agents = append(p.Agents, ag...)
			} else {
				globalCstrs = append(globalCstrs, g.Cstr)
			}
		}
	}
	if slide.Length > 0 || slide.Step > 0 {
		if slide.Length <= 0 {
			return nil, fmt.Errorf("aiql: sliding window declares step but no window length")
		}
		if slide.Step <= 0 {
			slide.Step = slide.Length
		}
		p.Slide = &slide
	}

	// Patterns.
	for i, patt := range multi.Patterns {
		pp, err := p.compilePattern(i, patt, globalCstrs)
		if err != nil {
			return nil, err
		}
		p.Patterns = append(p.Patterns, pp)
	}

	// Explicit relationships.
	for _, rel := range multi.Rels {
		j, err := p.compileRel(rel)
		if err != nil {
			return nil, err
		}
		p.Joins = append(p.Joins, j)
	}

	// Entity-ID reuse: every pair of occurrences of the same entity
	// variable in different patterns is an implicit id-equality join.
	for id, occs := range p.entityVars {
		for i := 1; i < len(occs); i++ {
			a, b := occs[0], occs[i]
			if a.typ != b.typ {
				return nil, fmt.Errorf("aiql: entity %q used as both %s and %s", id, a.typ, b.typ)
			}
			if a.pattern == b.pattern {
				continue
			}
			p.Joins = append(p.Joins, Join{
				Kind: JoinAttr, A: a.pattern, B: b.pattern,
				ASide: a.side, AAttr: types.AttrID, Op: pred.CmpEq,
				BSide: b.side, BAttr: types.AttrID,
			})
		}
	}

	// Return clause.
	if multi.Return == nil || len(multi.Return.Items) == 0 {
		return nil, fmt.Errorf("aiql: query has no return clause")
	}
	p.Return.Count = multi.Return.Count
	p.Return.Distinct = multi.Return.Distinct
	for _, item := range multi.Return.Items {
		ri, err := p.compileReturnItem(item)
		if err != nil {
			return nil, err
		}
		if ri.Name != "" {
			p.aliases[ri.Name] = len(p.Return.Items)
		}
		p.Return.Items = append(p.Return.Items, ri)
	}

	// Group by.
	for _, g := range multi.GroupBy {
		ref, ok := g.(*ast.Ref)
		if !ok {
			return nil, fmt.Errorf("aiql: group by expects a plain reference, found %s", g)
		}
		cr, err := p.resolveRef(ref)
		if err != nil {
			return nil, err
		}
		p.GroupBy = append(p.GroupBy, cr)
	}
	p.Having = multi.Having

	// Sort keys refer to return items by alias or by reference text.
	for _, key := range multi.SortBy {
		idx, err := p.resolveSortKey(key)
		if err != nil {
			return nil, err
		}
		p.SortBy = append(p.SortBy, idx)
	}
	p.SortDesc = multi.SortDesc
	p.Top = multi.Top

	if err := p.validate(); err != nil {
		return nil, err
	}
	return p, nil
}

func (p *Plan) validate() error {
	hasAgg := false
	for i := range p.Return.Items {
		if p.Return.Items[i].Agg != nil {
			hasAgg = true
		}
	}
	if p.Slide != nil {
		if !hasAgg {
			return fmt.Errorf("aiql: anomaly query declares a sliding window but returns no aggregate")
		}
		if p.Window.Unbounded() {
			return fmt.Errorf("aiql: anomaly query requires a bounded time window")
		}
	}
	if p.Having != nil && !hasAgg && p.Slide == nil {
		return fmt.Errorf("aiql: having clause requires aggregation")
	}
	return nil
}

func resolveWindow(w *ast.WindowLit) (timeutil.Window, error) {
	if w.At != "" {
		return timeutil.AtWindow(w.At)
	}
	return timeutil.FromToWindow(w.From, w.To)
}

// agentConstraint recognizes global agentid constraints and extracts the
// agent list they allow.
func agentConstraint(e ast.AttrExpr) ([]int, bool) {
	c, ok := e.(*ast.Cstr)
	if !ok || c.Attr != types.AttrAgentID {
		return nil, false
	}
	switch c.Op {
	case "=":
		if n, err := strconv.Atoi(c.Val); err == nil {
			return []int{n}, true
		}
	case "in":
		var out []int
		for _, v := range c.Vals {
			n, err := strconv.Atoi(v)
			if err != nil {
				return nil, false
			}
			out = append(out, n)
		}
		return out, true
	}
	return nil, false
}

func (p *Plan) compilePattern(idx int, patt *ast.EventPattern, globals []ast.AttrExpr) (*PatternPlan, error) {
	pp := &PatternPlan{Idx: idx, EvtID: patt.EvtID}
	if pp.EvtID == "" {
		pp.EvtID = fmt.Sprintf("_evt%d", idx)
	}
	if prev, dup := p.evtVars[pp.EvtID]; dup {
		return nil, cerrf(patt.Pos, "event id %q already names pattern %d", pp.EvtID, prev+1)
	}
	p.evtVars[pp.EvtID] = idx

	subj, err := p.compileEntity(idx, SideSubject, patt.Subj)
	if err != nil {
		return nil, err
	}
	obj, err := p.compileEntity(idx, SideObject, patt.Obj)
	if err != nil {
		return nil, err
	}
	pp.Subj, pp.Obj = subj, obj

	ops, err := compileOpExpr(patt.Op)
	if err != nil {
		return nil, err
	}
	if ops.Empty() {
		return nil, cerrf(patt.Pos, "operation expression %s matches no operation", patt.Op)
	}
	pp.Ops = ops

	if patt.EvtCstr != nil {
		ep, err := compileAttrExpr(patt.EvtCstr, "")
		if err != nil {
			return nil, err
		}
		pp.EvtPred = ep
	}
	// Global non-agent constraints apply to every pattern; they constrain
	// the event when the attribute is an event attribute, else the subject.
	for _, g := range globals {
		gp, err := compileAttrExpr(g, "")
		if err != nil {
			return nil, err
		}
		if isEventAttrExpr(g) {
			pp.EvtPred = pred.AndOf(pp.EvtPred, gp)
		} else {
			pp.Subj.Pred = pred.AndOf(pp.Subj.Pred, gp)
		}
	}

	pp.Window = p.Window
	if patt.Window != nil {
		w, err := resolveWindow(patt.Window)
		if err != nil {
			return nil, err
		}
		pp.Window = pp.Window.Intersect(w)
	}
	pp.Agents = p.Agents
	pp.Score = p.scorePattern(pp)
	return pp, nil
}

// scorePattern counts the constraints a pattern carries (Algorithm 1 step 1
// approximates pruning power by constraint count).
func (p *Plan) scorePattern(pp *PatternPlan) int {
	score := 0
	if pp.Subj.Pred != nil {
		score += pp.Subj.Pred.ConstraintCount()
	}
	if pp.Obj.Pred != nil {
		score += pp.Obj.Pred.ConstraintCount()
	}
	if pp.EvtPred != nil {
		score += pp.EvtPred.ConstraintCount()
	}
	if pp.Ops != types.AllOps() {
		score++
	}
	if !pp.Window.Unbounded() {
		score++
	}
	if len(pp.Agents) > 0 {
		score++
	}
	return score
}

func (p *Plan) compileEntity(patIdx int, side Side, ref ast.EntityRef) (EntitySpec, error) {
	et, ok := types.ParseEntityType(ref.Type)
	if !ok {
		return EntitySpec{}, cerrf(ref.Pos, "unknown entity type %q", ref.Type)
	}
	if side == SideSubject && et != types.EntityProcess {
		return EntitySpec{}, cerrf(ref.Pos, "event subjects must be processes, found %s", et)
	}
	spec := EntitySpec{Type: et, ID: ref.ID}
	if spec.ID == "" {
		spec.ID = fmt.Sprintf("_e%d%c", patIdx, "so"[side])
	} else {
		p.entityVars[spec.ID] = append(p.entityVars[spec.ID], varOcc{pattern: patIdx, side: side, typ: et})
	}
	if ref.Cstr != nil {
		pr, err := compileAttrExpr(ref.Cstr, et.DefaultAttr())
		if err != nil {
			return EntitySpec{}, err
		}
		spec.Pred = pr
	}
	return spec, nil
}

// compileAttrExpr lowers an attribute expression to a predicate; defaultAttr
// substitutes for the bare-value shortcut (empty attr names).
func compileAttrExpr(e ast.AttrExpr, defaultAttr string) (pred.Pred, error) {
	switch v := e.(type) {
	case *ast.Cstr:
		attr := v.Attr
		if attr == "" {
			if defaultAttr == "" {
				return nil, cerrf(v.Pos, "bare value %q needs an entity context to infer its attribute", v.Val)
			}
			attr = defaultAttr
		}
		op, err := cmpOpOf(v.Op)
		if err != nil {
			return nil, cerrf(v.Pos, "%v", err)
		}
		if op == pred.CmpIn || op == pred.CmpNotIn {
			return pred.NewCond(attr, op, "", v.Vals...), nil
		}
		return pred.NewCond(attr, op, v.Val), nil
	case *ast.NotAttr:
		x, err := compileAttrExpr(v.X, defaultAttr)
		if err != nil {
			return nil, err
		}
		return &pred.Not{X: x}, nil
	case *ast.BinAttr:
		l, err := compileAttrExpr(v.L, defaultAttr)
		if err != nil {
			return nil, err
		}
		r, err := compileAttrExpr(v.R, defaultAttr)
		if err != nil {
			return nil, err
		}
		if v.Op == "&&" {
			return pred.AndOf(l, r), nil
		}
		return &pred.Or{Xs: []pred.Pred{l, r}}, nil
	}
	return nil, fmt.Errorf("aiql: unsupported constraint node %T", e)
}

func cmpOpOf(op string) (pred.CmpOp, error) {
	switch op {
	case "=":
		return pred.CmpEq, nil
	case "!=":
		return pred.CmpNe, nil
	case "<":
		return pred.CmpLt, nil
	case "<=":
		return pred.CmpLe, nil
	case ">":
		return pred.CmpGt, nil
	case ">=":
		return pred.CmpGe, nil
	case "in":
		return pred.CmpIn, nil
	case "notin":
		return pred.CmpNotIn, nil
	}
	return 0, fmt.Errorf("unknown comparison operator %q", op)
}

// isEventAttrExpr reports whether every constrained attribute in the
// expression is an event attribute.
func isEventAttrExpr(e ast.AttrExpr) bool {
	all := true
	ast.Walk(e, func(n ast.AttrExpr) {
		if c, ok := n.(*ast.Cstr); ok {
			switch c.Attr {
			case types.EvtAttrAmount, types.EvtAttrFailCode, types.EvtAttrOpType,
				types.EvtAttrAccess, types.EvtAttrSeq, types.EvtAttrStart, types.EvtAttrEnd:
			default:
				all = false
			}
		}
	})
	return all
}

// compileOpExpr evaluates the operation expression against each operation
// in the universe, producing the set of matching operations.
func compileOpExpr(e ast.OpExpr) (types.OpSet, error) {
	if e == nil {
		return types.AllOps(), nil
	}
	var set types.OpSet
	for _, o := range types.AllOps().Ops() {
		ok, err := opMatches(e, o)
		if err != nil {
			return 0, err
		}
		if ok {
			set = set.Add(o)
		}
	}
	return set, nil
}

func opMatches(e ast.OpExpr, o types.Op) (bool, error) {
	switch v := e.(type) {
	case *ast.OpName:
		want, ok := types.ParseOp(v.Name)
		if !ok {
			return false, cerrf(v.Pos, "unknown operation %q", v.Name)
		}
		return want == o, nil
	case *ast.NotOp:
		ok, err := opMatches(v.X, o)
		return !ok, err
	case *ast.BinOp:
		l, err := opMatches(v.L, o)
		if err != nil {
			return false, err
		}
		r, err := opMatches(v.R, o)
		if err != nil {
			return false, err
		}
		if v.Op == "&&" {
			return l && r, nil
		}
		return l || r, nil
	}
	return false, fmt.Errorf("aiql: unsupported operation node %T", e)
}

func (p *Plan) compileRel(rel ast.Rel) (Join, error) {
	switch v := rel.(type) {
	case *ast.AttrRel:
		return p.compileAttrRel(v)
	case *ast.TempRel:
		return p.compileTempRel(v)
	}
	return Join{}, fmt.Errorf("aiql: unsupported relationship node %T", rel)
}

func (p *Plan) compileAttrRel(r *ast.AttrRel) (Join, error) {
	aOcc, ok := p.firstOcc(r.LID)
	if !ok {
		return Join{}, cerrf(r.Pos, "unknown entity id %q in relationship", r.LID)
	}
	bOcc, ok := p.firstOcc(r.RID)
	if !ok {
		return Join{}, cerrf(r.Pos, "unknown entity id %q in relationship", r.RID)
	}
	// Attribute inference: bare p1 = p3 compares entity ids.
	la, ra := r.LAttr, r.RAttr
	if la == "" && ra == "" {
		la, ra = types.AttrID, types.AttrID
	} else if la == "" {
		la = ra
	} else if ra == "" {
		ra = la
	}
	op, err := cmpOpOf(r.Op)
	if err != nil {
		return Join{}, cerrf(r.Pos, "%v", err)
	}
	return Join{
		Kind: JoinAttr, A: aOcc.pattern, B: bOcc.pattern,
		ASide: aOcc.side, AAttr: la, Op: op,
		BSide: bOcc.side, BAttr: ra,
	}, nil
}

func (p *Plan) compileTempRel(r *ast.TempRel) (Join, error) {
	ai, ok := p.evtVars[r.LEvt]
	if !ok {
		return Join{}, cerrf(r.Pos, "unknown event id %q in temporal relationship", r.LEvt)
	}
	bi, ok := p.evtVars[r.REvt]
	if !ok {
		return Join{}, cerrf(r.Pos, "unknown event id %q in temporal relationship", r.REvt)
	}
	var lo, hi int64
	if r.Lo != "" {
		var err error
		lo, err = timeutil.ParseDuration(r.Lo, r.Unit)
		if err != nil {
			return Join{}, cerrf(r.Pos, "%v", err)
		}
		hi, err = timeutil.ParseDuration(r.Hi, r.Unit)
		if err != nil {
			return Join{}, cerrf(r.Pos, "%v", err)
		}
		if hi < lo {
			return Join{}, cerrf(r.Pos, "temporal range %s-%s is inverted", r.Lo, r.Hi)
		}
	}
	j := Join{Kind: JoinTemporal, LoMs: lo, HiMs: hi}
	switch r.Kind {
	case "before":
		j.A, j.B, j.TempKind = ai, bi, "before"
	case "after":
		// "evtA after evtB" normalizes to "evtB before evtA".
		j.A, j.B, j.TempKind = bi, ai, "before"
	case "within":
		j.A, j.B, j.TempKind = ai, bi, "within"
	default:
		return Join{}, cerrf(r.Pos, "unknown temporal relationship %q", r.Kind)
	}
	return j, nil
}

func (p *Plan) firstOcc(id string) (varOcc, bool) {
	occs, ok := p.entityVars[id]
	if !ok || len(occs) == 0 {
		return varOcc{}, false
	}
	return occs[0], true
}

func (p *Plan) compileReturnItem(item ast.ReturnItem) (ReturnItem, error) {
	switch v := item.Expr.(type) {
	case *ast.Ref:
		cr, err := p.resolveRef(v)
		if err != nil {
			return ReturnItem{}, err
		}
		name := item.As
		if name == "" {
			name = v.String()
		}
		return ReturnItem{Name: name, Ref: cr}, nil
	case *ast.Agg:
		spec := &AggSpec{Func: v.Func, Distinct: v.Distinct}
		if ref, ok := v.Arg.(*ast.Ref); ok {
			cr, err := p.resolveRef(ref)
			if err != nil {
				return ReturnItem{}, err
			}
			spec.Arg = cr
		} else {
			return ReturnItem{}, cerrf(v.Pos, "nested aggregates are not supported")
		}
		name := item.As
		if name == "" {
			name = v.String()
		}
		return ReturnItem{Name: name, Agg: spec}, nil
	}
	return ReturnItem{}, fmt.Errorf("aiql: unsupported return expression %T", item.Expr)
}

// resolveRef maps an id[.attr] reference to a pattern column, applying the
// default-attribute inference when the attribute is omitted.
func (p *Plan) resolveRef(r *ast.Ref) (*ColRef, error) {
	if occ, ok := p.firstOcc(r.ID); ok {
		attr := r.Attr
		if attr == "" {
			typ := occ.typ
			attr = typ.DefaultAttr()
		}
		return &ColRef{Pattern: occ.pattern, Side: occ.side, Attr: attr}, nil
	}
	if pi, ok := p.evtVars[r.ID]; ok {
		attr := r.Attr
		if attr == "" {
			attr = types.EvtAttrOpType
		}
		return &ColRef{Pattern: pi, Attr: attr, IsEvent: true}, nil
	}
	return nil, cerrf(r.Pos, "unknown reference %q in return/group clause", r.ID)
}

func (p *Plan) resolveSortKey(key ast.SortKey) (int, error) {
	// By alias first.
	if idx, ok := p.aliases[key.Name]; ok && key.Attr == "" {
		return idx, nil
	}
	// By matching rendered reference.
	want := key.Name
	if key.Attr != "" {
		want += "." + key.Attr
	}
	for i := range p.Return.Items {
		if p.Return.Items[i].Name == want || p.Return.Items[i].Name == key.Name {
			return i, nil
		}
	}
	// By resolving to the same column as a return item.
	cr, err := p.resolveRef(&ast.Ref{ID: key.Name, Attr: key.Attr})
	if err != nil {
		return 0, fmt.Errorf("aiql: sort key %q does not match any returned column", key)
	}
	for i := range p.Return.Items {
		ri := p.Return.Items[i].Ref
		if ri != nil && *ri == *cr {
			return i, nil
		}
	}
	return 0, fmt.Errorf("aiql: sort key %q does not match any returned column", key)
}

// Columns returns the output column names.
func (p *Plan) Columns() []string {
	if p.Return.Count {
		return []string{"count"}
	}
	out := make([]string, len(p.Return.Items))
	for i := range p.Return.Items {
		out[i] = p.Return.Items[i].Name
	}
	return out
}

// HasAggregation reports whether the return clause aggregates.
func (p *Plan) HasAggregation() bool {
	for i := range p.Return.Items {
		if p.Return.Items[i].Agg != nil {
			return true
		}
	}
	return false
}

// PatternByEvtID returns the pattern index for an event id.
func (p *Plan) PatternByEvtID(id string) (int, bool) {
	i, ok := p.evtVars[id]
	return i, ok
}

// String renders a plan summary for debugging and error reports.
func (p *Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan: %d patterns, %d joins", len(p.Patterns), len(p.Joins))
	if p.Slide != nil {
		fmt.Fprintf(&b, ", sliding window %dms/%dms", p.Slide.Length, p.Slide.Step)
	}
	for _, pp := range p.Patterns {
		fmt.Fprintf(&b, "\n  [%d] %s %s %s (score %d)", pp.Idx, pp.Subj.ID, pp.Ops, pp.Obj.ID, pp.Score)
	}
	return b.String()
}
