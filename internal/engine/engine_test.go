package engine_test

import (
	"strconv"
	"strings"
	"sync"
	"testing"

	"aiql/internal/engine"
	"aiql/internal/gen"
	"aiql/internal/storage"
	"aiql/internal/types"
)

// The integration dataset is generated once; the engine never mutates it.
var (
	dsOnce sync.Once
	dsVal  *types.Dataset
)

func testDataset() *types.Dataset {
	dsOnce.Do(func() { dsVal = gen.Scenario(gen.SmallConfig()) })
	return dsVal
}

func newEngine(t testing.TB, opts engine.Options) *engine.Engine {
	t.Helper()
	st := storage.New(storage.Options{})
	st.Ingest(testDataset())
	return engine.New(st, opts)
}

// cellSet collects one column of a result into a set.
func cellSet(r *engine.Result, col string) map[string]bool {
	idx := -1
	for i, c := range r.Columns {
		if c == col {
			idx = i
		}
	}
	out := make(map[string]bool)
	if idx < 0 {
		return out
	}
	for _, row := range r.Rows {
		out[row[idx]] = true
	}
	return out
}

func containsMatch(set map[string]bool, substr string) bool {
	for v := range set {
		if strings.Contains(v, substr) {
			return true
		}
	}
	return false
}

func TestQuery7CompleteC5(t *testing.T) {
	e := newEngine(t, engine.Options{})
	res, err := e.Query(`
		agentid = 2
		(at "03/02/2017")
		proc p1["%cmd.exe"] start proc p2["%osql.exe"] as evt1
		proc p3["%sqlservr.exe"] write file f1["%backup1.dmp"] as evt2
		proc p4["%sbblv.exe"] read file f1 as evt3
		proc p4 read || write ip i1[dstip = "` + gen.AttackerIP + `"] as evt4
		with evt1 before evt2, evt2 before evt3, evt3 before evt4
		return distinct p1, p2, p3, f1, p4, i1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("complete c5 query found nothing; injection and query are out of sync")
	}
	if !containsMatch(cellSet(res, "p4"), "sbblv.exe") {
		t.Errorf("expected sbblv.exe in p4 column, got %v", cellSet(res, "p4"))
	}
	if !containsMatch(cellSet(res, "f1"), "backup1.dmp") {
		t.Errorf("expected backup1.dmp in f1 column, got %v", cellSet(res, "f1"))
	}
}

func TestQuery7AllStrategiesAgree(t *testing.T) {
	src := `
		agentid = 2
		(at "03/02/2017")
		proc p1["%cmd.exe"] start proc p2["%osql.exe"] as evt1
		proc p3["%sqlservr.exe"] write file f1["%backup1.dmp"] as evt2
		proc p4["%sbblv.exe"] read file f1 as evt3
		with evt1 before evt2, evt2 before evt3
		return distinct p1, p2, p3, f1, p4
		sort by p4`
	var want [][]string
	for _, strat := range []engine.Strategy{engine.StrategyRelationship, engine.StrategyFetchFilter, engine.StrategyBigJoin} {
		e := newEngine(t, engine.Options{Strategy: strat})
		res, err := e.Query(src)
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		if want == nil {
			want = res.Rows
			if len(want) == 0 {
				t.Fatal("no rows from relationship strategy")
			}
			continue
		}
		if len(res.Rows) != len(want) {
			t.Fatalf("%v: %d rows, want %d", strat, len(res.Rows), len(want))
		}
		for i := range want {
			if strings.Join(res.Rows[i], "|") != strings.Join(want[i], "|") {
				t.Fatalf("%v: row %d = %v, want %v", strat, i, res.Rows[i], want[i])
			}
		}
	}
}

func TestQuery2CommandHistoryProbing(t *testing.T) {
	e := newEngine(t, engine.Options{})
	res, err := e.Query(`
		agentid = 4
		(at "03/03/2017")
		proc p2 start proc p1 as evt1
		proc p3 read file[".viminfo" || ".bash_history"] as evt2
		with p1 = p3, evt1 before evt2
		return p2, p1
		sort by p2, p1`)
	if err != nil {
		t.Fatal(err)
	}
	// Query 2's bare-value shortcut infers name = ".viminfo" (exact); the
	// generator stores full paths, so the exact form matches nothing —
	// which also proves the shortcut compiled to equality, not LIKE.
	if len(res.Rows) != 0 {
		t.Errorf("exact-name query matched %d rows; bare values must compile to equality", len(res.Rows))
	}
	res2, err := e.Query(`
		agentid = 4
		(at "03/03/2017")
		proc p2 start proc p1 as evt1
		proc p3 read file["%.viminfo" || "%.bash_history"] as evt2
		with p1 = p3, evt1 before evt2
		return distinct p2, p1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Rows) == 0 {
		t.Fatal("wildcard history probe query found nothing")
	}
	if !containsMatch(cellSet(res2, "p1"), ".probe") {
		t.Errorf("expected the injected probe process, got %v", cellSet(res2, "p1"))
	}
}

func TestQuery3ForwardTracking(t *testing.T) {
	e := newEngine(t, engine.Options{})
	res, err := e.Query(`
		(at "03/03/2017")
		forward: proc p1["%/bin/cp%", agentid = 3] ->[write] file f1["/var/www/%info_stealer%"]
		<-[read] proc p2["%apache%"]
		->[connect] proc p3[agentid = 4]
		->[write] file f2["%info_stealer%"]
		return f1, p1, p2, p3, f2`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("forward tracking found nothing")
	}
	if !containsMatch(cellSet(res, "p3"), "wget") {
		t.Errorf("expected wget as the downloader, got %v", cellSet(res, "p3"))
	}
	if !containsMatch(cellSet(res, "f2"), "info_stealer") {
		t.Errorf("expected info_stealer ramification file, got %v", cellSet(res, "f2"))
	}
}

func TestQuery5AnomalySpike(t *testing.T) {
	e := newEngine(t, engine.Options{})
	res, err := e.Query(`
		(at "03/02/2017")
		agentid = 2
		window = 1 min, step = 10 sec
		proc p write ip i[dstip = "` + gen.AttackerIP + `"] as evt
		return p, avg(evt.amount) as amt
		group by p
		having (amt > 2 * (amt + amt[1] + amt[2]) / 3)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("anomaly query found no spike")
	}
	if !containsMatch(cellSet(res, "p"), "sbblv.exe") {
		t.Errorf("expected sbblv.exe as the spiking process, got %v", cellSet(res, "p"))
	}
	// The steady-state trickle must NOT trip the detector in every window:
	// the spike should be a small fraction of all windows.
	if len(res.Rows) > 60 {
		t.Errorf("detector fired in %d windows; expected a localized spike", len(res.Rows))
	}
}

func TestBackwardDependency(t *testing.T) {
	e := newEngine(t, engine.Options{})
	res, err := e.Query(`
		(at "03/03/2017")
		agentid = 1
		backward: file f1["%chrome_update.exe"] <-[write] proc p1["%GoogleUpdate%"] ->[read] ip i1[dstip = "` + gen.UpdateCDNIP + `"]
		return f1, p1, i1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("backward dependency query found nothing")
	}
}

func TestCountDistinct(t *testing.T) {
	e := newEngine(t, engine.Options{})
	res, err := e.Query(`
		agentid = 1
		(at "03/03/2017")
		proc p["%updchk.exe"] read ip i[dstip = "` + gen.BeaconIP + `"] as evt
		return count distinct p, i`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != "1" {
		t.Fatalf("count distinct = %v, want [[1]]", res.Rows)
	}
}

func TestGroupByAggregation(t *testing.T) {
	e := newEngine(t, engine.Options{})
	res, err := e.Query(`
		agentid = 1
		(at "03/03/2017")
		proc p["%updchk.exe"] read ip i as evt
		return p, count(i) as n
		group by p
		having n > 100`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d, want 1 (the beacon)", len(res.Rows))
	}
}

func TestTemporalRangeRelationship(t *testing.T) {
	e := newEngine(t, engine.Options{})
	// outlook starts excel, excel reads the invoice 10s later: a 1-2 minute
	// range must exclude it, a 0-1 minute range must include it.
	base := `
		agentid = 1
		(at "03/02/2017")
		proc p1["%outlook.exe"] start proc p2["%excel.exe"] as evt1
		proc p2 read file f1["%invoice.xls"] as evt2
		with evt1 before%s evt2
		return p1, p2, f1`
	res, err := e.Query(strings.Replace(base, "%s", "[0-1 minutes]", 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("0-1 minute range should match the macro opening the attachment")
	}
	res, err = e.Query(strings.Replace(base, "%s", "[1-2 minutes]", 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("1-2 minute range should exclude the 10s gap, got %d rows", len(res.Rows))
	}
}

func TestEntityReuseImplicitJoin(t *testing.T) {
	e := newEngine(t, engine.Options{})
	// Reusing p2 in both patterns must give the same result as the
	// explicit p2 = p3 relationship.
	explicit, err := e.Query(`
		agentid = 2
		(at "03/02/2017")
		proc p1["%wscript.exe"] write file f1["%sbblv.exe"] as evt1
		proc p2 start proc p3["%sbblv.exe"] as evt2
		with p1 = p2, evt1 before evt2
		return distinct p1, p3`)
	if err != nil {
		t.Fatal(err)
	}
	reused, err := e.Query(`
		agentid = 2
		(at "03/02/2017")
		proc p1["%wscript.exe"] write file f1["%sbblv.exe"] as evt1
		proc p1 start proc p3["%sbblv.exe"] as evt2
		with evt1 before evt2
		return distinct p1, p3`)
	if err != nil {
		t.Fatal(err)
	}
	if len(explicit.Rows) == 0 || len(explicit.Rows) != len(reused.Rows) {
		t.Fatalf("explicit %d rows vs reused %d rows", len(explicit.Rows), len(reused.Rows))
	}
}

func TestTopAndSort(t *testing.T) {
	e := newEngine(t, engine.Options{})
	res, err := e.Query(`
		agentid = 2
		(at "03/02/2017")
		proc p write ip i[dstip = "` + gen.AttackerIP + `"] as evt
		return distinct p, evt.amount
		sort by evt.amount desc
		top 5`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("top 5 returned %d rows", len(res.Rows))
	}
	// Descending order by numeric amount.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i-1][1] < res.Rows[i][1] && len(res.Rows[i-1][1]) <= len(res.Rows[i][1]) {
			t.Errorf("rows not descending: %v then %v", res.Rows[i-1], res.Rows[i])
		}
	}
}

func TestEmptyResultNotError(t *testing.T) {
	e := newEngine(t, engine.Options{})
	res, err := e.Query(`
		agentid = 1
		proc p1["%no_such_binary_anywhere%"] write file f1 as evt1
		return p1, f1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("expected empty result, got %d rows", len(res.Rows))
	}
}

func TestMalwareBehaviorQueries(t *testing.T) {
	e := newEngine(t, engine.Options{})
	for i, s := range gen.MalwareSamples {
		agent := gen.MalwareAgent(i)
		res, err := e.Query(`
			agentid = ` + itoa(agent) + `
			(at "03/03/2017")
			proc p1 start proc p2["%` + s.Name + `%"] as evt1
			proc p2 read || write || connect ip i1[dstip = "` + gen.MalwareC2IP + `"] as evt2
			with evt1 before evt2
			return distinct p1, p2, i1`)
		if err != nil {
			t.Fatalf("%s: %v", s.ID, err)
		}
		if s.Category == "Virus.Autorun" {
			continue // autorun has no C2 channel by design
		}
		if len(res.Rows) == 0 {
			t.Errorf("%s (%s): C2 behaviour not found on agent %d", s.ID, s.Category, agent)
		}
	}
}

func itoa(n int) string { return strconv.Itoa(n) }
