package engine

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"aiql/internal/storage"
)

// colValue projects one return column from a tuple row.
func colValue(ts *tupleSet, row []storage.Match, ref *ColRef) string {
	m := ts.match(row, ref.Pattern)
	if ref.IsEvent {
		v, _ := m.Event.Attr(ref.Attr)
		return v
	}
	v, _ := sideValue(m, ref.Side, ref.Attr)
	return v
}

// project turns the final tuple set into the query result, applying the
// return clause, distinct/count, group-by aggregation, having, sort and top.
func project(plan *Plan, ts *tupleSet) (*Result, error) {
	if plan.HasAggregation() || len(plan.GroupBy) > 0 {
		return aggregate(plan, ts)
	}
	res := &Result{Columns: plan.Columns()}
	rows := make([][]string, 0, len(ts.rows))
	for _, row := range ts.rows {
		out := make([]string, len(plan.Return.Items))
		for i := range plan.Return.Items {
			out[i] = colValue(ts, row, plan.Return.Items[i].Ref)
		}
		rows = append(rows, out)
	}
	if plan.Return.Distinct {
		rows = dedupeRows(rows)
	}
	if plan.Return.Count {
		res.Columns = []string{"count"}
		res.Rows = [][]string{{strconv.Itoa(len(rows))}}
		return res, nil
	}
	sortRows(rows, plan.SortBy, plan.SortDesc)
	if plan.Top > 0 && len(rows) > plan.Top {
		rows = rows[:plan.Top]
	}
	res.Rows = rows
	return res, nil
}

// aggregate evaluates a non-windowed aggregation (group by over the joined
// tuples). Windowed (anomaly) aggregation lives in anomaly.go.
func aggregate(plan *Plan, ts *tupleSet) (*Result, error) {
	type group struct {
		keyVals []string
		rows    [][]storage.Match
	}
	groups := make(map[string]*group)
	var order []string
	for _, row := range ts.rows {
		keyVals := make([]string, len(plan.GroupBy))
		for i, g := range plan.GroupBy {
			keyVals[i] = colValue(ts, row, g)
		}
		key := strings.Join(keyVals, "\x00")
		g, ok := groups[key]
		if !ok {
			g = &group{keyVals: keyVals}
			groups[key] = g
			order = append(order, key)
		}
		g.rows = append(g.rows, row)
	}
	// A query with aggregates but no group-by forms one global group.
	if len(plan.GroupBy) == 0 && len(groups) == 0 && len(ts.rows) > 0 {
		groups[""] = &group{rows: ts.rows}
		order = append(order, "")
	}

	res := &Result{Columns: plan.Columns()}
	for _, key := range order {
		g := groups[key]
		out := make([]string, len(plan.Return.Items))
		env := staticEnv{}
		for i := range plan.Return.Items {
			item := &plan.Return.Items[i]
			switch {
			case item.Ref != nil:
				out[i] = colValue(ts, g.rows[0], item.Ref)
			case item.Agg != nil:
				v := computeAgg(item.Agg, ts, g.rows)
				out[i] = formatNum(v)
				env[item.Name] = v
			}
		}
		if plan.Having != nil {
			ok, err := evalBool(plan.Having, env)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		res.Rows = append(res.Rows, out)
	}
	if plan.Return.Distinct {
		res.Rows = dedupeRows(res.Rows)
	}
	sortRows(res.Rows, plan.SortBy, plan.SortDesc)
	if plan.Top > 0 && len(res.Rows) > plan.Top {
		res.Rows = res.Rows[:plan.Top]
	}
	return res, nil
}

// computeAgg evaluates one aggregate over a group's rows.
func computeAgg(a *AggSpec, ts *tupleSet, rows [][]storage.Match) float64 {
	vals := make([]string, 0, len(rows))
	for _, row := range rows {
		if a.Arg != nil {
			vals = append(vals, colValue(ts, row, a.Arg))
		} else {
			vals = append(vals, "")
		}
	}
	if a.Distinct {
		seen := make(map[string]struct{}, len(vals))
		uniq := vals[:0]
		for _, v := range vals {
			if _, ok := seen[v]; !ok {
				seen[v] = struct{}{}
				uniq = append(uniq, v)
			}
		}
		vals = uniq
	}
	switch a.Func {
	case "count":
		return float64(len(vals))
	case "sum", "avg", "min", "max":
		var sum, mn, mx float64
		n := 0
		for _, v := range vals {
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				continue
			}
			if n == 0 {
				mn, mx = f, f
			}
			if f < mn {
				mn = f
			}
			if f > mx {
				mx = f
			}
			sum += f
			n++
		}
		switch a.Func {
		case "sum":
			return sum
		case "avg":
			if n == 0 {
				return 0
			}
			return sum / float64(n)
		case "min":
			return mn
		default:
			return mx
		}
	}
	return 0
}

func dedupeRows(rows [][]string) [][]string {
	seen := make(map[string]struct{}, len(rows))
	out := rows[:0:0]
	for _, r := range rows {
		key := strings.Join(r, "\x00")
		if _, ok := seen[key]; ok {
			continue
		}
		seen[key] = struct{}{}
		out = append(out, r)
	}
	return out
}

// sortRows orders rows by the given column indexes, comparing numerically
// when both cells parse as numbers.
func sortRows(rows [][]string, keys []int, desc bool) {
	if len(keys) == 0 {
		return
	}
	sort.SliceStable(rows, func(i, j int) bool {
		for _, k := range keys {
			if k >= len(rows[i]) || k >= len(rows[j]) {
				continue
			}
			c := compareCell(rows[i][k], rows[j][k])
			if c == 0 {
				continue
			}
			if desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
}

func compareCell(a, b string) int {
	an, aerr := strconv.ParseFloat(a, 64)
	bn, berr := strconv.ParseFloat(b, 64)
	if aerr == nil && berr == nil {
		switch {
		case an < bn:
			return -1
		case an > bn:
			return 1
		}
		return 0
	}
	return strings.Compare(a, b)
}

func formatNum(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', 6, 64)
}

// String renders a result as an aligned text table.
func (r *Result) String() string {
	var b strings.Builder
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(r.Columns)
	for _, row := range r.Rows {
		writeRow(row)
	}
	fmt.Fprintf(&b, "(%d rows)\n", len(r.Rows))
	return b.String()
}
