package engine_test

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"aiql/internal/engine"
	"aiql/internal/storage"
)

// TestSchedulerEquivalenceFuzz generates random multievent queries over the
// scenario dataset and checks that every scheduler — relationship-based
// (with and without score sorting, pushdown, hash joins, stats scoring),
// fetch-and-filter, big-join and apply-join — returns exactly the same
// result set. This is the core soundness property of paper Sec. 5: the
// optimizations must change cost only, never answers.
func TestSchedulerEquivalenceFuzz(t *testing.T) {
	st := storage.New(storage.Options{})
	st.Ingest(testDataset())

	configs := map[string]engine.Options{
		"relationship":  {},
		"no-score-sort": {NoScoreSort: true},
		"no-pushdown":   {NoPushdown: true},
		"no-hashjoin":   {NoHashJoin: true},
		"no-splitdays":  {DisableSplitDays: true},
		"stats":         {StatsScoring: true},
		"fetch-filter":  {Strategy: engine.StrategyFetchFilter},
		"big-join":      {Strategy: engine.StrategyBigJoin},
		"apply-join":    {ApplyJoin: true},
	}
	engines := make(map[string]*engine.Engine, len(configs))
	for name, opts := range configs {
		engines[name] = engine.New(st, opts)
	}

	rng := rand.New(rand.NewSource(2024))
	trials := 40
	if testing.Short() {
		trials = 10
	}
	for trial := 0; trial < trials; trial++ {
		src := randomQuery(rng)
		var wantKey string
		var wantRows int
		for _, name := range sortedKeys(configs) {
			res, err := engines[name].Query(src)
			if err != nil {
				t.Fatalf("trial %d [%s]: %v\nquery:\n%s", trial, name, err, src)
			}
			key := canonical(res.Rows)
			if name == "relationship" {
				wantKey, wantRows = key, len(res.Rows)
				continue
			}
			if key != wantKey {
				t.Fatalf("trial %d: %s returned %d rows, relationship returned %d\nquery:\n%s",
					trial, name, len(res.Rows), wantRows, src)
			}
		}
	}
}

// randomQuery builds a random but semantically valid multievent query
// against the entities the generator is known to produce.
func randomQuery(rng *rand.Rand) string {
	agents := []int{1, 2, 3, 4, 5}
	days := []string{"03/01/2017", "03/02/2017", "03/03/2017"}
	procPreds := []string{
		``, `["%cmd.exe"]`, `["%sbblv.exe"]`, `["%apache%"]`, `["%chrome%"]`,
		`["%svchost%"]`, `[user = "root"]`,
	}
	filePreds := []string{
		``, `["%backup1.dmp"]`, `["/var/log%"]`, `["%.dll"]`, `["%Documents%"]`,
	}
	ipPreds := []string{``, `[dstip = "203.0.113.129"]`, `[dstport = 443]`}
	fileOps := []string{"read", "write", "read || write", "execute", "delete", "!read"}
	procOps := []string{"start"}
	ipOps := []string{"connect", "read || write", "write"}

	n := 2 + rng.Intn(2) // 2 or 3 patterns
	var b strings.Builder
	fmt.Fprintf(&b, "agentid = %d\n", agents[rng.Intn(len(agents))])
	fmt.Fprintf(&b, "(at %q)\n", days[rng.Intn(len(days))])

	var rets []string
	for i := 0; i < n; i++ {
		subj := fmt.Sprintf("p%d", i)
		// Sometimes reuse the previous subject to exercise implicit joins.
		if i > 0 && rng.Intn(2) == 0 {
			subj = fmt.Sprintf("p%d", i-1)
		} else {
			rets = append(rets, subj)
		}
		switch rng.Intn(3) {
		case 0: // file pattern
			fmt.Fprintf(&b, "proc %s%s %s file f%d%s as evt%d\n",
				subj, procPreds[rng.Intn(len(procPreds))],
				fileOps[rng.Intn(len(fileOps))], i,
				filePreds[rng.Intn(len(filePreds))], i)
			rets = append(rets, fmt.Sprintf("f%d", i))
		case 1: // process pattern
			fmt.Fprintf(&b, "proc %s%s %s proc c%d as evt%d\n",
				subj, procPreds[rng.Intn(len(procPreds))],
				procOps[rng.Intn(len(procOps))], i, i)
			rets = append(rets, fmt.Sprintf("c%d", i))
		default: // network pattern
			fmt.Fprintf(&b, "proc %s%s %s ip i%d%s as evt%d\n",
				subj, procPreds[rng.Intn(len(procPreds))],
				ipOps[rng.Intn(len(ipOps))], i,
				ipPreds[rng.Intn(len(ipPreds))], i)
			rets = append(rets, fmt.Sprintf("i%d", i))
		}
	}
	// Temporal chain over consecutive patterns, occasionally with a range.
	var rels []string
	for i := 0; i+1 < n; i++ {
		switch rng.Intn(3) {
		case 0:
			rels = append(rels, fmt.Sprintf("evt%d before evt%d", i, i+1))
		case 1:
			rels = append(rels, fmt.Sprintf("evt%d after evt%d", i+1, i))
		default:
			rels = append(rels, fmt.Sprintf("evt%d before[0-60 minutes] evt%d", i, i+1))
		}
	}
	if len(rels) > 0 {
		fmt.Fprintf(&b, "with %s\n", strings.Join(rels, ", "))
	}
	fmt.Fprintf(&b, "return distinct %s\n", strings.Join(rets, ", "))
	fmt.Fprintf(&b, "sort by %s", rets[0])
	return b.String()
}

// canonical renders a result set order-independently (distinct queries can
// legitimately differ in row order when the sort key ties).
func canonical(rows [][]string) string {
	keys := make([]string, len(rows))
	for i, r := range rows {
		keys[i] = strings.Join(r, "\x1f")
	}
	sort.Strings(keys)
	return strings.Join(keys, "\x1e")
}

func sortedKeys(m map[string]engine.Options) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	// Evaluate the reference configuration first.
	for i, k := range out {
		if k == "relationship" {
			out[0], out[i] = out[i], out[0]
		}
	}
	return out
}
