package engine_test

import (
	"math/rand"
	"sort"
	"testing"

	"aiql/internal/engine"
	"aiql/internal/queries"
	"aiql/internal/storage"
)

// TestSchedulerEquivalenceFuzz generates random multievent queries over the
// scenario dataset and checks that every scheduler — relationship-based
// (with and without score sorting, pushdown, hash joins, stats scoring),
// fetch-and-filter, big-join and apply-join — returns exactly the same
// result set. This is the core soundness property of paper Sec. 5: the
// optimizations must change cost only, never answers.
func TestSchedulerEquivalenceFuzz(t *testing.T) {
	st := storage.New(storage.Options{})
	st.Ingest(testDataset())

	configs := map[string]engine.Options{
		"relationship":  {},
		"no-score-sort": {NoScoreSort: true},
		"no-pushdown":   {NoPushdown: true},
		"no-hashjoin":   {NoHashJoin: true},
		"no-splitdays":  {DisableSplitDays: true},
		"stats":         {StatsScoring: true},
		"fetch-filter":  {Strategy: engine.StrategyFetchFilter},
		"big-join":      {Strategy: engine.StrategyBigJoin},
		"apply-join":    {ApplyJoin: true},
	}
	engines := make(map[string]*engine.Engine, len(configs))
	for name, opts := range configs {
		engines[name] = engine.New(st, opts)
	}

	rng := rand.New(rand.NewSource(2024))
	trials := 40
	if testing.Short() {
		trials = 10
	}
	for trial := 0; trial < trials; trial++ {
		src := queries.Random(rng)
		var wantKey string
		var wantRows int
		for _, name := range sortedKeys(configs) {
			res, err := engines[name].Query(src)
			if err != nil {
				t.Fatalf("trial %d [%s]: %v\nquery:\n%s", trial, name, err, src)
			}
			key := queries.Canonical(res.Rows)
			if name == "relationship" {
				wantKey, wantRows = key, len(res.Rows)
				continue
			}
			if key != wantKey {
				t.Fatalf("trial %d: %s returned %d rows, relationship returned %d\nquery:\n%s",
					trial, name, len(res.Rows), wantRows, src)
			}
		}
	}
}

func sortedKeys(m map[string]engine.Options) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	// Evaluate the reference configuration first.
	for i, k := range out {
		if k == "relationship" {
			out[0], out[i] = out[i], out[0]
		}
	}
	return out
}
