package engine_test

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"aiql/internal/engine"
	"aiql/internal/gen"
	"aiql/internal/storage"
	"aiql/internal/types"
)

// blockingBackend's cursors produce nothing and block until their context
// is canceled — a stand-in for an arbitrarily slow storage layer.
type blockingBackend struct {
	scans atomic.Int32
}

func (b *blockingBackend) Scan(ctx context.Context, q *storage.DataQuery) storage.Cursor {
	b.scans.Add(1)
	return &blockingCursor{ctx: ctx}
}

type blockingCursor struct {
	ctx context.Context
	err error
}

func (c *blockingCursor) Next(batch []storage.Match) int {
	<-c.ctx.Done()
	c.err = c.ctx.Err()
	return 0
}
func (c *blockingCursor) Err() error { return c.err }
func (c *blockingCursor) Close()     {}

// TestExecuteCancellation verifies engine.Execute aborts promptly when its
// context is canceled mid-scan, instead of waiting for the backend.
func TestExecuteCancellation(t *testing.T) {
	b := &blockingBackend{}
	e := engine.New(b, engine.Options{DisableSplitDays: true})
	pq, err := e.Prepare(`proc p read file f return p, f`)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := pq.Execute(ctx)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the execution reach the blocking scan
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Execute returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Execute did not abort within 5s of cancellation")
	}
	if b.scans.Load() == 0 {
		t.Fatal("execution never reached the backend")
	}
}

// TestExecutePreCanceled: an already-canceled context never touches the
// backend.
func TestExecutePreCanceled(t *testing.T) {
	b := &blockingBackend{}
	e := engine.New(b, engine.Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.QueryContext(ctx, `proc p read file f return p, f`); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled QueryContext returned %v, want context.Canceled", err)
	}
	if b.scans.Load() != 0 {
		t.Fatalf("pre-canceled execution issued %d scans", b.scans.Load())
	}
}

// countingBackend wraps a store and records the number of matches actually
// pulled through its cursors, proving (or disproving) early termination.
type countingBackend struct {
	st     *storage.Store
	pulled atomic.Int64
}

func (b *countingBackend) Scan(ctx context.Context, q *storage.DataQuery) storage.Cursor {
	return &countingCursor{inner: b.st.Scan(ctx, q), n: &b.pulled}
}

type countingCursor struct {
	inner storage.Cursor
	n     *atomic.Int64
}

func (c *countingCursor) Next(batch []storage.Match) int {
	n := c.inner.Next(batch)
	c.n.Add(int64(n))
	return n
}
func (c *countingCursor) Err() error { return c.inner.Err() }
func (c *countingCursor) Close()     { c.inner.Close() }

// TestTopKTerminatesScanEarly: a single-pattern top-k query must push its
// limit into the storage scan and stop pulling after k matches, instead of
// materializing everything and post-filtering.
func TestTopKTerminatesScanEarly(t *testing.T) {
	const host = 1
	day := gen.DayStart(1)
	b := gen.NewBuilder(3)
	bash := b.Proc(host, "/bin/bash")
	log := b.File(host, "/var/log/syslog")
	for k := 0; k < 5000; k++ {
		b.Emit(host, bash, log, types.OpWrite, day+int64(k)*10, 128)
	}
	st := storage.New(storage.Options{})
	st.Ingest(b.Dataset())

	cb := &countingBackend{st: st}
	e := engine.New(cb, engine.Options{})
	res, err := e.Query(`proc p write file f["%syslog"] as evt return p, f top 7`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 7 {
		t.Fatalf("top 7 returned %d rows", len(res.Rows))
	}
	if pulled := cb.pulled.Load(); pulled > 7 {
		t.Fatalf("top-k pulled %d matches through the cursor, want ≤ 7", pulled)
	}
}

// TestUnboundedTemporalPushdown: a "before" relationship in a query with no
// time window pushes a half-unbounded window (To = 1<<62) into the second
// data query; day-splitting must not try to enumerate its days. Regression
// test for a hang inherited from the materializing executor.
func TestUnboundedTemporalPushdown(t *testing.T) {
	const host = 1
	day := gen.DayStart(1)
	b := gen.NewBuilder(5)
	bash := b.Proc(host, "/bin/bash")
	curl := b.ProcInstance(host, "/usr/bin/curl")
	secret := b.File(host, "/home/alice/.ssh/id_rsa")
	b.Emit(host, bash, curl, types.OpStart, day+1000, 0)
	b.Emit(host, curl, secret, types.OpRead, day+2000, 4096)

	st := storage.New(storage.Options{})
	st.Ingest(b.Dataset())
	e := engine.New(st, engine.Options{})

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := e.QueryContext(ctx, `
		proc p1["%bash"] start proc p2 as evt1
		proc p2 read file f["%id_rsa"] as evt2
		with evt1 before evt2
		return p1, p2, f`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("got %d rows, want 1", len(res.Rows))
	}
}

// TestSnapshotExecuteOn runs a prepared query against an explicit snapshot
// while the store ingests concurrently: every execution must report exactly
// the row count implied by its snapshot's generation, under -race.
func TestSnapshotExecuteOn(t *testing.T) {
	const host = 1
	day := gen.DayStart(1)
	b := gen.NewBuilder(11)
	bash := b.Proc(host, "/bin/bash")
	secret := b.File(host, "/home/alice/.ssh/id_rsa")
	b.Emit(host, bash, secret, types.OpRead, day+1000, 4096)

	st := storage.New(storage.Options{})
	st.Ingest(b.Dataset())
	e := engine.New(st, engine.Options{})
	pq, err := e.Prepare(`
		agentid = 1
		proc p read file f["%id_rsa"] as evt
		return p, f`)
	if err != nil {
		t.Fatal(err)
	}
	baseGen := st.Generation()

	const batches = 30
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < batches; i++ {
			// Each batch adds exactly one more matching read of the secret.
			ev := types.Event{
				ID: types.EventID(100000 + i), AgentID: host,
				Subject: bash, Object: secret,
				Op: types.OpRead, Start: day + 2000 + int64(i), Seq: uint64(100000 + i), Amount: 1,
			}
			st.Ingest(types.NewDataset(nil, []types.Event{ev}))
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				snap := st.Snapshot()
				res, err := pq.ExecuteOn(context.Background(), snap)
				if err != nil {
					t.Error(err)
					snap.Close()
					return
				}
				want := 1 + int(snap.Generation()-baseGen)
				if len(res.Rows) != want {
					t.Errorf("generation %d: %d rows, want %d", snap.Generation(), len(res.Rows), want)
				}
				snap.Close()
			}
		}()
	}
	wg.Wait()
	if st.LiveSnapshots() != 0 {
		t.Fatalf("%d snapshots leaked", st.LiveSnapshots())
	}
}

// TestNoLeaksOnErrorPaths drives engine executions down their failure
// exits — budget exhaustion mid-join, cancellation mid-execution, and the
// plain success path as a control — and asserts the backing store's
// live-snapshot and live-cursor counters return to zero each time. An
// execution that errors out of a scheduler loop without closing its
// cursors would strand producer goroutines and pin copy-on-write forever.
func TestNoLeaksOnErrorPaths(t *testing.T) {
	ds := gen.Scenario(gen.SmallConfig())
	st := storage.New(storage.Options{})
	st.Ingest(ds)

	assertBaseline := func(step string) {
		t.Helper()
		if n := st.LiveCursors(); n != 0 {
			t.Fatalf("%s: %d cursors leaked", step, n)
		}
		if n := st.LiveSnapshots(); n != 0 {
			t.Fatalf("%s: %d snapshots leaked", step, n)
		}
	}

	multiPattern := `
		proc p read file f as evt1
		proc p write file g as evt2
		with evt1 before evt2
		return p, f, g`

	// Control: a successful multi-pattern run.
	eng := engine.New(st, engine.Options{})
	if _, err := eng.Query(multiPattern); err != nil {
		t.Fatalf("control query: %v", err)
	}
	assertBaseline("success")

	// Budget exhaustion: a tiny tuple ceiling errors out of the join loop
	// while pattern cursors are open.
	tiny := engine.New(st, engine.Options{MaxTuples: 4})
	if _, err := tiny.Query(multiPattern); !errors.Is(err, engine.ErrTooLarge) {
		t.Fatalf("tiny budget returned %v, want ErrTooLarge", err)
	}
	assertBaseline("budget")

	// Pair-budget exhaustion takes a different error exit inside joins.
	pairs := engine.New(st, engine.Options{MaxPairs: 8})
	if _, err := pairs.Query(multiPattern); !errors.Is(err, engine.ErrTooLarge) {
		t.Fatalf("pair budget returned %v, want ErrTooLarge", err)
	}
	assertBaseline("pairs")

	// Cancellation mid-execution.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.QueryContext(ctx, multiPattern); err == nil {
		t.Fatal("pre-canceled query succeeded")
	}
	assertBaseline("canceled")

	// The materializing baselines hold full result sets; their error exits
	// must release cursors too.
	for _, strat := range []engine.Strategy{engine.StrategyFetchFilter, engine.StrategyBigJoin} {
		e := engine.New(st, engine.Options{Strategy: strat, MaxTuples: 4})
		if _, err := e.Query(multiPattern); !errors.Is(err, engine.ErrTooLarge) {
			t.Fatalf("strategy %v returned %v, want ErrTooLarge", strat, err)
		}
		assertBaseline(strat.String())
	}

	// Prepared queries over per-request snapshots (the aiqld path).
	pq, err := eng.Prepare(multiPattern)
	if err != nil {
		t.Fatal(err)
	}
	snap := st.Snapshot()
	if _, err := pq.ExecuteOn(context.Background(), snap); err != nil {
		t.Fatal(err)
	}
	snap.Close()
	assertBaseline("prepared on snapshot")
}
