package engine

import (
	"context"
	"fmt"
	"sort"
	"strconv"

	"aiql/internal/ast"
	"aiql/internal/obs"
	"aiql/internal/parser"
	"aiql/internal/pred"
	"aiql/internal/storage"
	"aiql/internal/timeutil"
	"aiql/internal/types"
)

// Backend executes synthesized data queries, streaming matches through a
// cursor so the engine decides how much to materialize. storage.Store and
// storage.Snapshot, the MPP cluster and the baseline stores all satisfy it.
// Scan must honour ctx: cancellation stops its producers promptly.
type Backend interface {
	Scan(ctx context.Context, q *storage.DataQuery) storage.Cursor
}

// Estimator is the optional Backend extension behind Options.StatsScoring:
// a cardinality estimate for a data query, answered from index statistics
// without scanning (paper Sec. 7's statistical pruning model).
type Estimator interface {
	Estimate(q *storage.DataQuery) int
}

// DaySplitting is the optional Backend extension backends use to veto the
// engine's per-day splitting of multi-day data queries. Local backends
// profit from the split (each day's sub-scan prunes partitions and runs in
// parallel), but a backend whose Scan carries a fixed per-call cost — the
// networked cluster coordinator pays one HTTP fan-out per Scan — returns
// false to receive the whole window in one call and partition it itself.
type DaySplitting interface {
	// SplitDays reports whether the engine should split multi-day windows
	// into per-day sub-scans before calling Scan.
	SplitDays() bool
}

// Strategy selects the data-query scheduler (paper Sec. 5.2).
type Strategy uint8

const (
	// StrategyRelationship is Algorithm 1: pruning-score ordering with
	// constrained execution of later data queries.
	StrategyRelationship Strategy = iota
	// StrategyFetchFilter executes every data query independently, then
	// filters tuples by the relationships (the AIQL FF baseline).
	StrategyFetchFilter
	// StrategyBigJoin emulates a semantics-agnostic RDBMS: per-row
	// predicate evaluation without entity pre-resolution, joined in
	// declaration order with late relationship filtering.
	StrategyBigJoin
)

func (s Strategy) String() string {
	switch s {
	case StrategyRelationship:
		return "relationship"
	case StrategyFetchFilter:
		return "fetch-and-filter"
	case StrategyBigJoin:
		return "big-join"
	default:
		return "unknown"
	}
}

// Options tune the engine; the zero value is the paper's full AIQL
// configuration.
type Options struct {
	Strategy Strategy
	// MaxTuples bounds any intermediate tuple set (default 2,000,000).
	MaxTuples int
	// MaxPairs bounds the total number of join pairs examined
	// (default 500,000,000) — the stand-in for the paper's 1h timeout.
	MaxPairs int64
	// PushdownLimit caps how many distinct values constrained execution
	// pushes into a data query (default 65536).
	PushdownLimit int
	// NoScoreSort disables the pruning-score ordering of relationships
	// (ablation; relationships are processed in declaration order).
	NoScoreSort bool
	// NoPushdown disables constrained execution (ablation).
	NoPushdown bool
	// StatsScoring ranks event patterns by index-derived cardinality
	// estimates instead of constraint counts (paper Sec. 7 future work).
	// Requires a Backend that implements Estimator; silently falls back to
	// constraint counts otherwise.
	StatsScoring bool
	// SplitDays executes multi-day data queries as parallel per-day
	// sub-queries (the paper's time window partition optimization).
	// Disabled only for ablation benchmarks.
	DisableSplitDays bool
	// NoHashJoin forces nested-loop joins, emulating query layers without
	// efficient join support (the paper's Neo4j observation).
	NoHashJoin bool
	// ApplyJoin replaces fetch-once-and-join with per-row re-expansion of
	// each subsequent pattern (Cypher's Apply operator) — the Neo4j
	// emulation's join discipline. Overrides Strategy's join behaviour.
	ApplyJoin bool
}

func (o Options) withDefaults() Options {
	if o.MaxTuples == 0 {
		o.MaxTuples = 2_000_000
	}
	if o.MaxPairs == 0 {
		o.MaxPairs = 500_000_000
	}
	if o.PushdownLimit == 0 {
		o.PushdownLimit = 65536
	}
	return o
}

// Engine executes compiled plans against a backend.
type Engine struct {
	backend Backend
	opts    Options
}

// New creates an engine.
func New(b Backend, opts Options) *Engine {
	return &Engine{backend: b, opts: opts.withDefaults()}
}

// Backend returns the backend the engine executes against — callers that
// were handed only the engine (the bench harness, the query service) use
// it to reach backend-specific operations like the cluster coordinator's
// scatter ingest.
func (e *Engine) Backend() Backend { return e.backend }

// Result is the tabular output of a query.
type Result struct {
	Columns []string
	Rows    [][]string
	// Diagnostics
	DataQueries int // number of data queries issued
	TuplesMax   int // largest intermediate tuple set
}

// Query parses, compiles and executes AIQL source without a deadline — the
// convenience form for CLIs, tests and examples.
func (e *Engine) Query(src string) (*Result, error) {
	//aiql:ignore ctxflow -- Query is the deliberately context-free public root; callers with a deadline use QueryContext
	return e.QueryContext(context.Background(), src)
}

// QueryContext parses, compiles and executes AIQL source. Canceling ctx
// aborts the execution promptly: in-flight storage scans stop producing and
// join loops bail between batches.
func (e *Engine) QueryContext(ctx context.Context, src string) (*Result, error) {
	q, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	return e.Execute(ctx, q)
}

// Execute compiles and runs a parsed query under ctx.
func (e *Engine) Execute(ctx context.Context, q *ast.Query) (*Result, error) {
	plan, err := Compile(q)
	if err != nil {
		return nil, err
	}
	return e.Run(ctx, plan)
}

// Run executes a compiled plan under ctx against the engine's backend.
func (e *Engine) Run(ctx context.Context, plan *Plan) (*Result, error) {
	return e.runOn(ctx, plan, e.backend)
}

// runOn executes a plan against an explicit backend — how a PreparedQuery
// is replayed against a per-request storage snapshot.
func (e *Engine) runOn(ctx context.Context, plan *Plan, b Backend) (*Result, error) {
	if ctx == nil {
		//aiql:ignore ctxflow -- nil-ctx backstop for direct Run callers, not a new context root
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// When the request carries a trace, hang this execution's spans off it:
	// under the caller's span when one is set (the server's execute stage),
	// at the trace root otherwise. A nil trace makes every span nil and every
	// span method a no-op, so untraced queries pay one context lookup here
	// and nothing per stage.
	var execSpan *obs.Span
	if parent := obs.SpanFromContext(ctx); parent != nil {
		execSpan = parent.Child("execute")
	} else {
		execSpan = obs.FromContext(ctx).Span("execute")
	}
	execSpan.Set("strategy", e.opts.Strategy.String())
	defer execSpan.End()
	// Pin one snapshot for the whole execution when running over a mutable
	// store, so every data query of a multi-pattern plan sees the same
	// generation — otherwise an ingest landing mid-execution could join
	// pattern results from store states that never coexisted. (Callers that
	// pass a Snapshot, like aiqld, pinned already; the MPP cluster snapshots
	// per segment scan, a consistency gap sharding will have to close.)
	if st, ok := b.(*storage.Store); ok {
		pin := execSpan.Child("snapshot-pin")
		snap := st.Snapshot()
		pin.End()
		defer snap.Close()
		b = snap
	}
	exec := &execution{
		eng:     e,
		backend: b,
		plan:    plan,
		ctx:     ctx,
		span:    execSpan,
		bud:     &budget{maxTuples: e.opts.MaxTuples, maxPairs: e.opts.MaxPairs, noHash: e.opts.NoHashJoin, ctx: ctx},
	}
	if plan.Slide != nil {
		return e.runAnomaly(exec)
	}
	exec.limit = planScanLimit(plan)
	ts, err := exec.run()
	if err != nil {
		return nil, err
	}
	res, err := project(plan, ts)
	if err != nil {
		return nil, err
	}
	res.DataQueries = exec.queries
	res.TuplesMax = exec.tuplesMax
	return res, nil
}

// planScanLimit returns the row limit that can be pushed all the way into
// the storage scan: only a top-k over a single pattern with no joins, no
// aggregation, no distinct/count and no sort keys consumes exactly its
// first Top matches, so only then may the scan terminate early instead of
// the projection post-filtering.
func planScanLimit(p *Plan) int {
	if p.Top <= 0 || p.Slide != nil || len(p.Patterns) != 1 || len(p.Joins) > 0 {
		return 0
	}
	if p.HasAggregation() || len(p.GroupBy) > 0 || p.Return.Distinct || p.Return.Count || len(p.SortBy) > 0 {
		return 0
	}
	return p.Top
}

// execution carries per-run state.
type execution struct {
	eng       *Engine
	backend   Backend
	plan      *Plan
	ctx       context.Context
	span      *obs.Span // the run's trace span; nil (no-op) when untraced
	bud       *budget
	limit     int // storage-level row limit (planScanLimit), 0 if none
	queries   int
	tuplesMax int
	estimates []int // lazily filled pattern cardinality estimates
}

// checkCtx is the engine's cancellation point, called between data queries
// and between cursor batches.
func (x *execution) checkCtx() error {
	return x.ctx.Err()
}

// score returns the pruning score of a pattern: with StatsScoring and an
// estimating backend, the negated cardinality estimate (fewer expected
// rows = more pruning power); otherwise the compile-time constraint count.
func (x *execution) score(idx int) int {
	est, ok := x.backend.(Estimator)
	if !x.eng.opts.StatsScoring || !ok {
		return x.plan.Patterns[idx].Score
	}
	if x.estimates == nil {
		x.estimates = make([]int, len(x.plan.Patterns))
		for i := range x.estimates {
			x.estimates[i] = -1
		}
	}
	if x.estimates[idx] < 0 {
		pp := x.plan.Patterns[idx]
		x.estimates[idx] = est.Estimate(&storage.DataQuery{
			Agents:   pp.Agents,
			Window:   pp.Window,
			SubjType: pp.Subj.Type,
			ObjType:  pp.Obj.Type,
			SubjPred: pp.Subj.Pred,
			ObjPred:  pp.Obj.Pred,
			Ops:      pp.Ops,
			EvtPred:  pp.EvtPred,
		})
	}
	return -x.estimates[idx]
}

// patternConstraint is what constrained execution pushes into a later data
// query: entity-id allow-sets and/or extra attribute predicates, plus a
// narrowed time window derived from temporal relationships.
type patternConstraint struct {
	subjAllowed map[types.EntityID]struct{}
	objAllowed  map[types.EntityID]struct{}
	subjExtra   pred.Pred
	objExtra    pred.Pred
	window      *timeutil.Window
}

// buildQuery synthesizes the data query for one pattern, folding in the
// scheduler's pushdown constraint and the plan-level scan limit.
func (x *execution) buildQuery(idx int, pc *patternConstraint) *storage.DataQuery {
	pp := x.plan.Patterns[idx]
	q := &storage.DataQuery{
		Agents:    pp.Agents,
		Window:    pp.Window,
		SubjType:  pp.Subj.Type,
		ObjType:   pp.Obj.Type,
		SubjPred:  pp.Subj.Pred,
		ObjPred:   pp.Obj.Pred,
		Ops:       pp.Ops,
		EvtPred:   pp.EvtPred,
		Limit:     x.limit,
		ForceScan: x.eng.opts.Strategy == StrategyBigJoin,
	}
	if pc != nil {
		q.SubjAllowed = pc.subjAllowed
		q.ObjAllowed = pc.objAllowed
		if pc.subjExtra != nil {
			q.SubjPred = pred.AndOf(q.SubjPred, pc.subjExtra)
		}
		if pc.objExtra != nil {
			q.ObjPred = pred.AndOf(q.ObjPred, pc.objExtra)
		}
		if pc.window != nil {
			q.Window = q.Window.Intersect(*pc.window)
		}
	}
	return q
}

// scanPattern opens a cursor over one pattern's data query. The caller owns
// the cursor (Close on early exit; Err after exhaustion). Under a trace the
// scan gets its own span: the storage layer folds block counters into it via
// the context, and the span ends when the cursor closes, so its duration
// covers the drain, not just the open.
func (x *execution) scanPattern(idx int, pc *patternConstraint) storage.Cursor {
	x.queries++
	ctx := x.ctx
	span := x.span.Child("scan")
	if span != nil {
		span.Set("pattern", strconv.Itoa(idx))
		if pc != nil {
			span.Set("constrained", "true")
		}
		ctx = obs.WithSpan(ctx, span)
	}
	cur := x.scanDataQuery(ctx, x.buildQuery(idx, pc))
	if span != nil {
		cur = &spanCursor{inner: cur, span: span}
	}
	return cur
}

// spanCursor ends a scan span when its cursor closes, tagging the rows
// streamed. Cursors are single-consumer, so the plain counter is safe.
type spanCursor struct {
	inner storage.Cursor
	span  *obs.Span
	rows  int64
	done  bool
}

func (c *spanCursor) Next(batch []storage.Match) int {
	n := c.inner.Next(batch)
	c.rows += int64(n)
	return n
}

func (c *spanCursor) Err() error { return c.inner.Err() }

func (c *spanCursor) Close() {
	c.inner.Close()
	if c.done {
		return
	}
	c.done = true
	c.span.Add("rows", c.rows)
	if err := c.inner.Err(); err != nil {
		c.span.Set("error", err.Error())
	}
	c.span.End()
}

// runPattern materializes one pattern's full match set — used where the
// scheduler genuinely needs all of it (constraint derivation, base sets of
// the materializing baselines, per-row Apply expansion).
func (x *execution) runPattern(idx int, pc *patternConstraint) ([]storage.Match, error) {
	cur := x.scanPattern(idx, pc)
	defer cur.Close()
	out := storage.Drain(cur)
	if err := cur.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// maxSplitDays bounds the per-day splitting of one data query. Temporal
// pushdown synthesizes half-unbounded windows (e.g. [minT, 1<<62) for an
// unbounded "before"); enumerating their days would effectively never
// terminate, and beyond a year of sub-scans the split adds scheduling
// overhead without improving on the storage layer's own partition pruning.
const maxSplitDays = 366

// scanDataQuery opens one data query cursor, splitting multi-day windows
// into per-day sub-scans when enabled (paper Sec. 5.2, "Time Window
// Partition"). Every sub-scan's producers start immediately, so the days
// are searched in parallel while the consumer drains them in order.
func (x *execution) scanDataQuery(ctx context.Context, q *storage.DataQuery) storage.Cursor {
	if ds, ok := x.backend.(DaySplitting); ok && !ds.SplitDays() {
		return x.backend.Scan(ctx, q)
	}
	if x.eng.opts.DisableSplitDays || q.Window.Unbounded() ||
		q.Window.Duration() > maxSplitDays*timeutil.DayMillis {
		return x.backend.Scan(ctx, q)
	}
	days := timeutil.SplitByDay(q.Window)
	if len(days) <= 1 {
		return x.backend.Scan(ctx, q)
	}
	cs := make([]storage.Cursor, len(days))
	for i := range days {
		sub := *q
		sub.Window = days[i]
		cs[i] = x.backend.Scan(ctx, &sub)
	}
	return storage.NewMultiCursor(q.Limit, cs...)
}

// run dispatches to the configured scheduler and guarantees the returned
// tuple set covers every pattern.
func (x *execution) run() (*tupleSet, error) {
	var (
		ts  *tupleSet
		err error
	)
	if x.eng.opts.ApplyJoin {
		ts, err = x.applyJoin()
		if err != nil {
			return nil, err
		}
		if len(ts.cols) != len(x.plan.Patterns) {
			return nil, fmt.Errorf("aiql: internal error: apply join covered %d of %d patterns", len(ts.cols), len(x.plan.Patterns))
		}
		return ts, nil
	}
	switch x.eng.opts.Strategy {
	case StrategyRelationship:
		ts, err = x.relationshipSchedule()
	case StrategyFetchFilter:
		ts, err = x.fetchAndFilter()
	case StrategyBigJoin:
		ts, err = x.bigJoin()
	default:
		return nil, fmt.Errorf("aiql: unknown strategy %v", x.eng.opts.Strategy)
	}
	if err != nil {
		return nil, err
	}
	if len(ts.cols) != len(x.plan.Patterns) {
		return nil, fmt.Errorf("aiql: internal error: schedule covered %d of %d patterns", len(ts.cols), len(x.plan.Patterns))
	}
	return ts, nil
}

func (x *execution) note(ts *tupleSet) *tupleSet {
	if len(ts.rows) > x.tuplesMax {
		x.tuplesMax = len(ts.rows)
	}
	return ts
}

// constraintFromMatches derives the pushdown constraint for the pattern on
// the far side of join j, given n concrete matches for the near (known)
// side accessed through get.
func (x *execution) constraintFromMatches(j *Join, knownPattern int, n int, get func(i int) *storage.Match) *patternConstraint {
	if x.eng.opts.NoPushdown {
		return nil
	}
	pc := &patternConstraint{}
	known := j.A
	knownSide, targetSide := j.ASide, j.BSide
	knownAttr, targetAttr := j.AAttr, j.BAttr
	if knownPattern == j.B {
		known = j.B
		knownSide, targetSide = j.BSide, j.ASide
		knownAttr, targetAttr = j.BAttr, j.AAttr
	}
	switch j.Kind {
	case JoinAttr:
		if j.Op != pred.CmpEq {
			return nil
		}
		vals := make(map[string]struct{})
		for i := 0; i < n; i++ {
			m := get(i)
			if v, ok := sideValue(m, knownSide, knownAttr); ok {
				vals[v] = struct{}{}
				if len(vals) > x.eng.opts.PushdownLimit {
					return nil // too many distinct values to push
				}
			}
		}
		if targetAttr == types.AttrID {
			ids := make(map[types.EntityID]struct{}, len(vals))
			for v := range vals {
				n, err := strconv.ParseUint(v, 10, 64)
				if err != nil {
					return nil
				}
				ids[types.EntityID(n)] = struct{}{}
			}
			if targetSide == SideSubject {
				pc.subjAllowed = ids
			} else {
				pc.objAllowed = ids
			}
			return pc
		}
		list := make([]string, 0, len(vals))
		for v := range vals {
			list = append(list, v)
		}
		sort.Strings(list)
		c := pred.NewCond(targetAttr, pred.CmpIn, "", list...)
		if targetSide == SideSubject {
			pc.subjExtra = c
		} else {
			pc.objExtra = c
		}
		return pc
	case JoinTemporal:
		// Narrow the target's time window from the known side's extremes.
		var minT, maxT int64
		for i := 0; i < n; i++ {
			t := get(i).Event.Start
			if i == 0 || t < minT {
				minT = t
			}
			if i == 0 || t > maxT {
				maxT = t
			}
		}
		if n == 0 {
			// No known events: the join can never be satisfied; an empty
			// window makes the target query trivially empty.
			w := timeutil.EmptyWindow()
			pc.window = &w
			return pc
		}
		if j.TempKind != "before" {
			return nil
		}
		var w timeutil.Window
		if known == j.A {
			// target is B: tB >= minA (+lo), tB <= maxA + hi if bounded.
			w = timeutil.Window{From: minT + j.LoMs}
			if j.HiMs > 0 {
				w.To = maxT + j.HiMs + 1
			} else {
				w.To = timeutil.MaxMillis
			}
		} else {
			// target is A: tA <= maxB, tA >= minB - hi if bounded. The
			// unbounded low end is MinMillis, not 0 or 1: pre-epoch events
			// carry negative timestamps and a positive sentinel would
			// silently exclude them from the join.
			w = timeutil.Window{To: maxT + 1}
			if j.HiMs > 0 {
				w.From = minT - j.HiMs
			} else {
				w.From = timeutil.MinMillis
			}
		}
		if w == (timeutil.Window{}) {
			// Pre-epoch extremes can place an intended-empty range exactly
			// at the origin, where the zero value means "unbounded" —
			// which would silently discard the pushdown constraint.
			w = timeutil.EmptyWindow()
		}
		pc.window = &w
		return pc
	}
	return nil
}
