package engine

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"aiql/internal/ast"
	"aiql/internal/parser"
)

// havingExpr parses just a having expression by wrapping it in a minimal
// query.
func havingExpr(t *testing.T, expr string) ast.Expr {
	t.Helper()
	q, err := parser.Parse(`proc p write ip i as evt
		return p, count(i) as freq
		group by p
		having ` + expr)
	if err != nil {
		t.Fatalf("parse having %q: %v", expr, err)
	}
	return q.Multi.Having
}

type seriesEnv map[string][]float64

func (e seriesEnv) Value(name string, hist int) (float64, bool) {
	s, ok := e[name]
	if !ok {
		return 0, false
	}
	idx := len(s) - 1 - hist
	if idx < 0 {
		return 0, false
	}
	return s[idx], true
}

func (e seriesEnv) Series(name string) []float64 { return e[name] }

func TestEvalArithmetic(t *testing.T) {
	env := seriesEnv{"freq": {1, 2, 6}}
	cases := []struct {
		expr string
		want float64
	}{
		{"freq + 1", 7},
		{"freq - freq[1]", 4},
		{"freq * 2", 12},
		{"freq / 3", 2},
		{"freq / 0", 0}, // division by zero yields no signal
		{"-freq", -6},
		{"2 * (freq + freq[1] + freq[2]) / 3", 6},
		{"freq[5]", 0}, // missing history contributes zero
	}
	for _, tc := range cases {
		got, err := evalNum(havingExpr(t, tc.expr+" > -999999"), env)
		_ = got
		if err != nil {
			t.Errorf("%s: %v", tc.expr, err)
			continue
		}
		// Evaluate the arithmetic part directly by re-parsing without the
		// comparison wrapper.
		q, _ := parser.Parse(`proc p write ip i as evt
			return p, count(i) as freq group by p having ` + tc.expr + ` = ` + formatNum(tc.want))
		ok, err := evalBool(q.Multi.Having, env)
		if err != nil {
			t.Errorf("%s: %v", tc.expr, err)
			continue
		}
		if !ok {
			t.Errorf("%s != %g", tc.expr, tc.want)
		}
	}
}

func TestEvalComparisonsAndLogic(t *testing.T) {
	env := seriesEnv{"freq": {10}}
	truths := []string{
		"freq = 10", "freq != 9", "freq > 9", "freq >= 10",
		"freq < 11", "freq <= 10",
		"freq > 5 && freq < 20", "freq > 100 || freq = 10",
		"!(freq > 100)",
	}
	for _, expr := range truths {
		ok, err := evalBool(havingExpr(t, expr), env)
		if err != nil || !ok {
			t.Errorf("%s = %v, %v; want true", expr, ok, err)
		}
	}
	falses := []string{"freq = 9", "freq > 10 && freq < 20", "freq < 5 || freq > 15"}
	for _, expr := range falses {
		ok, err := evalBool(havingExpr(t, expr), env)
		if err != nil || ok {
			t.Errorf("%s = %v, %v; want false", expr, ok, err)
		}
	}
}

func TestShortCircuit(t *testing.T) {
	// freq && UNKNOWN(...) would error if the right side evaluated.
	env := seriesEnv{"freq": {0}}
	ok, err := evalBool(havingExpr(t, "freq > 100 && UNKNOWN(freq)"), env)
	if err != nil || ok {
		t.Errorf("short-circuit AND failed: %v, %v", ok, err)
	}
	env["freq"] = []float64{10}
	ok, err = evalBool(havingExpr(t, "freq > 1 || UNKNOWN(freq)"), env)
	if err != nil || !ok {
		t.Errorf("short-circuit OR failed: %v, %v", ok, err)
	}
}

func TestMovingAverages(t *testing.T) {
	s := []float64{1, 2, 3, 4, 5}
	if got := sma(s, 3); got != 4 {
		t.Errorf("SMA3 = %g, want 4", got)
	}
	if got := sma(s, 10); got != 3 { // clamps to series length
		t.Errorf("SMA10 = %g, want 3", got)
	}
	if got := sma(nil, 3); got != 0 {
		t.Errorf("SMA of empty = %g", got)
	}
	// WMA3 over [3,4,5] = (1*3+2*4+3*5)/6 = 26/6.
	if got := wma(s, 3); math.Abs(got-26.0/6) > 1e-12 {
		t.Errorf("WMA3 = %g", got)
	}
	// EWMA with alpha=1 is the last value; alpha=0 is the first.
	if got := ewma(s, 1); got != 5 {
		t.Errorf("EWMA(1) = %g", got)
	}
	if got := ewma(s, 0); got != 1 {
		t.Errorf("EWMA(0) = %g", got)
	}
	// Recurrence check: e = 0.5*5 + 0.5*(0.5*4 + 0.5*(0.5*3 + 0.5*(0.5*2 + 0.5*1))).
	want := 1.0
	for _, v := range s[1:] {
		want = 0.5*v + 0.5*want
	}
	if got := ewma(s, 0.5); math.Abs(got-want) > 1e-12 {
		t.Errorf("EWMA(0.5) = %g, want %g", got, want)
	}
}

func TestMovingAverageCalls(t *testing.T) {
	env := seriesEnv{"freq": {1, 2, 3, 4, 5}}
	cases := []struct {
		expr string
		want float64
	}{
		{"SMA(freq, 3)", 4},
		{"CMA(freq)", 3},
		{"WMA(freq, 3)", 26.0 / 6},
		{"EWMA(freq, 1)", 5},
		{"ABS(0 - freq)", 5},
	}
	for _, tc := range cases {
		q, _ := parser.Parse(`proc p write ip i as evt
			return p, count(i) as freq group by p
			having ABS(` + tc.expr + ` - ` + formatNum(tc.want) + `) < 0.001`)
		ok, err := evalBool(q.Multi.Having, env)
		if err != nil || !ok {
			t.Errorf("%s != %g (%v)", tc.expr, tc.want, err)
		}
	}
}

func TestIncrementalEWMAMatchesFold(t *testing.T) {
	// Property: the anomaly executor's incremental EWMA must agree with the
	// direct fold for any series and alpha.
	f := func(raw []uint8, alphaRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		alpha := float64(alphaRaw%100) / 100
		g := &groupState{series: map[string][]float64{}, ewma: map[ewmaKey]*ewmaState{}}
		env := &windowEnv{g: g}
		for _, v := range raw {
			g.series["x"] = append(g.series["x"], float64(v))
			inc, ok := env.EWMA("x", alpha)
			if !ok {
				return false
			}
			direct := ewma(g.series["x"], alpha)
			if math.Abs(inc-direct) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestEvalErrors(t *testing.T) {
	env := seriesEnv{"freq": {1}}
	bad := []struct{ expr, want string }{
		{"UNKNOWN(freq)", "unknown function"},
		{"SMA(nosuch, 3)", "unknown aggregate"},
		{"EWMA(freq)", "missing argument"},
		{"SMA(1 + 2, 3)", "aggregate name"},
	}
	for _, tc := range bad {
		_, err := evalBool(havingExpr(t, tc.expr+" > 0"), env)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error = %v, want %q", tc.expr, err, tc.want)
		}
	}
}

func TestStaticEnv(t *testing.T) {
	env := staticEnv{"n": 42}
	if v, ok := env.Value("n", 0); !ok || v != 42 {
		t.Errorf("Value = %g, %v", v, ok)
	}
	if _, ok := env.Value("n", 1); ok {
		t.Error("static env must not have history")
	}
	if s := env.Series("n"); len(s) != 1 || s[0] != 42 {
		t.Errorf("Series = %v", s)
	}
	if env.Series("missing") != nil {
		t.Error("missing series should be nil")
	}
}

func TestUnaryNot(t *testing.T) {
	env := seriesEnv{"freq": {0}}
	ok, err := evalBool(havingExpr(t, "!freq"), env)
	if err != nil || !ok {
		t.Errorf("!0 = %v, %v", ok, err)
	}
	env["freq"] = []float64{3}
	ok, err = evalBool(havingExpr(t, "!freq"), env)
	if err != nil || ok {
		t.Errorf("!3 = %v, %v", ok, err)
	}
}
