package engine

import (
	"strings"
	"testing"

	"aiql/internal/ast"
	"aiql/internal/parser"
	"aiql/internal/pred"
	"aiql/internal/types"
)

func mustCompile(t *testing.T, src string) *Plan {
	t.Helper()
	q, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func compileErr(t *testing.T, src, want string) {
	t.Helper()
	q, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse failed before compile: %v", err)
	}
	_, err = Compile(q)
	if err == nil {
		t.Fatalf("Compile accepted:\n%s", src)
	}
	if !strings.Contains(err.Error(), want) {
		t.Errorf("error %q does not contain %q", err, want)
	}
}

func TestCompileGlobals(t *testing.T) {
	plan := mustCompile(t, `
		agentid = 3
		(at "03/02/2017")
		proc p1 start proc p2 return p1`)
	if len(plan.Agents) != 1 || plan.Agents[0] != 3 {
		t.Errorf("agents = %v", plan.Agents)
	}
	if plan.Window.Unbounded() {
		t.Error("window not resolved")
	}
	if plan.Patterns[0].Window != plan.Window {
		t.Error("pattern window must inherit the global window")
	}
}

func TestCompileAgentInList(t *testing.T) {
	plan := mustCompile(t, `
		agentid in (1, 2, 5)
		proc p1 start proc p2 return p1`)
	if len(plan.Agents) != 3 {
		t.Errorf("agents = %v", plan.Agents)
	}
}

func TestDefaultAttributeInference(t *testing.T) {
	plan := mustCompile(t, `
		proc p1["%cmd%"] write file f1["/tmp/x"] as evt
		proc p1 write ip i1["10.0.0.9"] as evt2
		return p1, f1, i1`)
	// Bare values infer the per-type default attribute.
	subj := plan.Patterns[0].Subj.Pred.(*pred.Cond)
	if subj.Attr != types.AttrExeName {
		t.Errorf("proc default attr = %q", subj.Attr)
	}
	obj := plan.Patterns[0].Obj.Pred.(*pred.Cond)
	if obj.Attr != types.AttrName {
		t.Errorf("file default attr = %q", obj.Attr)
	}
	ipPred := plan.Patterns[1].Obj.Pred.(*pred.Cond)
	if ipPred.Attr != types.AttrDstIP {
		t.Errorf("ip default attr = %q", ipPred.Attr)
	}
	// Return refs infer default attributes too.
	if plan.Return.Items[0].Ref.Attr != types.AttrExeName {
		t.Errorf("return p1 resolved to %q", plan.Return.Items[0].Ref.Attr)
	}
	if plan.Return.Items[2].Ref.Attr != types.AttrDstIP {
		t.Errorf("return i1 resolved to %q", plan.Return.Items[2].Ref.Attr)
	}
}

func TestBareAttrRelInfersID(t *testing.T) {
	plan := mustCompile(t, `
		proc p1 start proc p2 as evt1
		proc p3 write file f1 as evt2
		with p2 = p3
		return p1, f1`)
	var attrJoin *Join
	for i := range plan.Joins {
		if plan.Joins[i].Kind == JoinAttr {
			attrJoin = &plan.Joins[i]
		}
	}
	if attrJoin == nil {
		t.Fatal("no attribute join compiled")
	}
	if attrJoin.AAttr != types.AttrID || attrJoin.BAttr != types.AttrID {
		t.Errorf("bare relationship compiled to %s = %s, want id = id", attrJoin.AAttr, attrJoin.BAttr)
	}
}

func TestEntityReuseCreatesImplicitJoins(t *testing.T) {
	plan := mustCompile(t, `
		proc p1 start proc p2 as evt1
		proc p2 write file f1 as evt2
		proc p2 read file f2 as evt3
		return p1, f1, f2`)
	// p2 appears in three patterns: two implicit id joins chain them.
	joins := 0
	for _, j := range plan.Joins {
		if j.Kind == JoinAttr && j.AAttr == types.AttrID {
			joins++
		}
	}
	if joins != 2 {
		t.Errorf("implicit joins = %d, want 2", joins)
	}
}

func TestOpExprCompilation(t *testing.T) {
	cases := []struct {
		src  string
		want types.OpSet
	}{
		{`proc p read || write file f return p`, types.NewOpSet(types.OpRead, types.OpWrite)},
		{`proc p !read file f return p`, types.AllOps().Complement().Complement() &^ types.OpSet(1<<types.OpRead)},
		{`proc p (read || write) && !write file f return p`, types.NewOpSet(types.OpRead)},
	}
	for _, tc := range cases {
		plan := mustCompile(t, tc.src)
		if plan.Patterns[0].Ops != tc.want {
			t.Errorf("%s: ops = %v, want %v", tc.src, plan.Patterns[0].Ops, tc.want)
		}
	}
}

func TestPruningScores(t *testing.T) {
	plan := mustCompile(t, `
		agentid = 1
		(at "03/02/2017")
		proc p1 start proc p2 as evt1
		proc p3["%a%" && user = "root"] read file f1["%b%"] as evt2
		return p1, f1`)
	p0, p1 := plan.Patterns[0], plan.Patterns[1]
	// Pattern 1 carries 3 more attribute atoms than pattern 0.
	if p1.Score != p0.Score+3 {
		t.Errorf("scores = %d vs %d, want difference of 3", p0.Score, p1.Score)
	}
	// Both get credit for op, window and agent constraints.
	if p0.Score != 3 {
		t.Errorf("base score = %d, want 3 (op+window+agent)", p0.Score)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{`file f1 write file f2 return f1`, "subjects must be processes"},
		{`proc p1 start proc p2 as e1 proc p1 write file f as e1 return p1`, "already names pattern"},
		{`proc p1 read && write file f return p1`, "matches no operation"},
		{`proc p1 write file f as e1 with nosuch = p1 return p1`, "unknown entity id"},
		{`proc p1 write file f as e1 with e9 before e1 return p1`, "unknown event id"},
		{`proc p1 write file f return nosuchvar`, "unknown reference"},
		{`proc p1 write file f return p1 sort by zz`, "does not match any returned column"},
		{`proc p1 write file f as e1 proc p2 start proc p3 as e2 with e1 before[5-2 minutes] e2 return p1`, "inverted"},
		{`window = 1 min proc p write file f return p`, "returns no aggregate"},
		{`step = 10 sec proc p write file f return p, count(f) as n group by p`, "no window length"},
		{`proc p write file f return p having 1 > 0`, "requires aggregation"},
		{`proc f1 write file f1 return f1`, "used as both"},
	}
	for _, tc := range cases {
		compileErr(t, tc.src, tc.want)
	}
}

func TestAnomalyRequiresBoundedWindow(t *testing.T) {
	compileErr(t, `
		window = 1 min, step = 10 sec
		proc p write ip i as evt
		return p, avg(evt.amount) as amt
		group by p`, "bounded time window")
}

func TestSlideDefaults(t *testing.T) {
	plan := mustCompile(t, `
		(at "03/02/2017")
		window = 5 min
		proc p write ip i as evt
		return p, count(i) as n
		group by p`)
	if plan.Slide == nil {
		t.Fatal("slide window missing")
	}
	if plan.Slide.Step != plan.Slide.Length {
		t.Errorf("step defaults to window length; got %d/%d", plan.Slide.Step, plan.Slide.Length)
	}
}

func TestTemporalNormalization(t *testing.T) {
	plan := mustCompile(t, `
		proc p1 write file f1 as e1
		proc p2 write file f2 as e2
		with e2 after e1
		return p1, p2`)
	j := plan.Joins[0]
	// "e2 after e1" must normalize to "e1 before e2".
	if j.TempKind != "before" || j.A != 0 || j.B != 1 {
		t.Errorf("normalized join = %+v", j)
	}
}

func TestEventAttrGlobalsGoToEvents(t *testing.T) {
	plan := mustCompile(t, `
		amount > 1000
		proc p1 write file f1 return p1`)
	if plan.Patterns[0].EvtPred == nil {
		t.Fatal("event-attribute global constraint not applied to events")
	}
	if plan.Patterns[0].Subj.Pred != nil {
		t.Error("event constraint leaked to subject")
	}
}

func TestSubjectAttrGlobalsGoToSubjects(t *testing.T) {
	plan := mustCompile(t, `
		user = "root"
		proc p1 write file f1 return p1`)
	if plan.Patterns[0].Subj.Pred == nil {
		t.Fatal("entity-attribute global constraint not applied to subjects")
	}
}

func TestColumnsAndPlanString(t *testing.T) {
	plan := mustCompile(t, `
		proc p1 write file f1 as evt1
		return p1, f1.owner, evt1.optype`)
	cols := plan.Columns()
	if len(cols) != 3 || cols[1] != "f1.owner" || cols[2] != "evt1.optype" {
		t.Errorf("columns = %v", cols)
	}
	if !strings.Contains(plan.String(), "1 patterns") {
		t.Errorf("plan string = %q", plan.String())
	}
	countPlan := mustCompile(t, `proc p1 write file f1 return count p1`)
	if cols := countPlan.Columns(); len(cols) != 1 || cols[0] != "count" {
		t.Errorf("count columns = %v", cols)
	}
}

func TestDependencyRewriteShape(t *testing.T) {
	q, err := parser.Parse(`
		forward: proc p1["%cp%"] ->[write] file f1["%x%"] <-[read] proc p2 ->[connect] proc p3
		return p1, f1, p2, p3`)
	if err != nil {
		t.Fatal(err)
	}
	m, err := RewriteDependency(q.Dep)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Patterns) != 3 {
		t.Fatalf("patterns = %d, want 3", len(m.Patterns))
	}
	// Edge 2 is <-[read]: subject must be the right node (p2).
	if m.Patterns[1].Subj.ID != "p2" || m.Patterns[1].Obj.ID != "f1" {
		t.Errorf("reversed edge compiled as %s -> %s", m.Patterns[1].Subj.ID, m.Patterns[1].Obj.ID)
	}
	// f1's constraint appears only once (first occurrence).
	if m.Patterns[0].Obj.Cstr == nil {
		t.Error("first occurrence lost its constraint")
	}
	if m.Patterns[1].Obj.Cstr != nil {
		t.Error("second occurrence kept a redundant constraint")
	}
	// Forward direction: 2 temporal relationships.
	temp := 0
	for _, r := range m.Rels {
		if _, ok := r.(*ast.TempRel); ok {
			temp++
		}
	}
	if temp != 2 {
		t.Errorf("temporal rels = %d, want 2", temp)
	}
}

func TestDependencyRewriteErrors(t *testing.T) {
	q, err := parser.Parse(`
		forward: file f1 ->[write] file f2
		return f1, f2`)
	if err != nil {
		t.Fatal(err)
	}
	if _, rerr := RewriteDependency(q.Dep); rerr == nil ||
		!strings.Contains(rerr.Error(), "only processes perform operations") {
		t.Errorf("file-subject edge accepted: %v", rerr)
	}
}

func TestPatternByEvtID(t *testing.T) {
	plan := mustCompile(t, `
		proc p1 write file f1 as first
		proc p2 read file f2 as second
		return p1, p2`)
	if i, ok := plan.PatternByEvtID("second"); !ok || i != 1 {
		t.Errorf("PatternByEvtID(second) = %d, %v", i, ok)
	}
	if _, ok := plan.PatternByEvtID("missing"); ok {
		t.Error("unknown event id resolved")
	}
}
