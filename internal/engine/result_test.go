package engine_test

import (
	"context"
	"errors"
	"strconv"
	"strings"
	"testing"

	"aiql/internal/engine"
	"aiql/internal/gen"
	"aiql/internal/pred"
	"aiql/internal/storage"
	"aiql/internal/types"
)

func TestStatsScoringAgreesWithDefault(t *testing.T) {
	st := storage.New(storage.Options{})
	st.Ingest(testDataset())
	def := engine.New(st, engine.Options{})
	stats := engine.New(st, engine.Options{StatsScoring: true})
	srcs := []string{
		`agentid = 2
		 (at "03/02/2017")
		 proc p1["%cmd.exe"] start proc p2["%osql.exe"] as evt1
		 proc p3["%sqlservr.exe"] write file f1["%backup1.dmp"] as evt2
		 proc p4["%sbblv.exe"] read file f1 as evt3
		 with evt1 before evt2, evt2 before evt3
		 return distinct p1, p2, p3, f1, p4 sort by p4`,
		`agentid = 4
		 (at "03/03/2017")
		 proc p2 start proc p1 as evt1
		 proc p1 read file f1["%.viminfo" || "%.bash_history"] as evt2
		 with evt1 before evt2
		 return distinct p2, p1 sort by p2, p1`,
	}
	for _, src := range srcs {
		a, err := def.Query(src)
		if err != nil {
			t.Fatal(err)
		}
		b, err := stats.Query(src)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Rows) != len(b.Rows) {
			t.Fatalf("stats scoring changed results: %d vs %d rows", len(a.Rows), len(b.Rows))
		}
		for i := range a.Rows {
			if strings.Join(a.Rows[i], "|") != strings.Join(b.Rows[i], "|") {
				t.Fatalf("row %d differs under stats scoring", i)
			}
		}
	}
}

func TestStorageEstimateTracksSelectivity(t *testing.T) {
	st := storage.New(storage.Options{})
	st.Ingest(testDataset())
	// A highly selective pattern must estimate far fewer rows than an
	// unconstrained one, and estimates must upper-bound actual matches for
	// candidate-driven queries.
	selective := &storage.DataQuery{
		Agents:   []int{gen.AgentDBServer},
		SubjType: procType(), ObjType: fileType(),
		SubjPred: exeLike("%sbblv.exe"),
		Ops:      allOps(),
	}
	broad := &storage.DataQuery{
		Agents:   []int{gen.AgentDBServer},
		SubjType: procType(),
		Ops:      allOps(),
	}
	selEst, broadEst := st.Estimate(selective), st.Estimate(broad)
	if selEst >= broadEst {
		t.Errorf("estimates: selective %d >= broad %d", selEst, broadEst)
	}
	if actual := len(st.Run(context.Background(), selective)); selEst < actual {
		t.Errorf("estimate %d below actual %d", selEst, actual)
	}
}

func TestBudgetExhaustionSurfacesErrTooLarge(t *testing.T) {
	st := storage.New(storage.Options{})
	st.Ingest(testDataset())
	// An unconstrained cartesian self-join over background events blows the
	// tiny pair budget immediately.
	e := engine.New(st, engine.Options{
		Strategy: engine.StrategyFetchFilter,
		MaxPairs: 10,
	})
	_, err := e.Query(`
		agentid = 1
		proc p1 read file f1 as evt1
		proc p2 write file f2 as evt2
		with evt1 before evt2
		return count p1`)
	if !errors.Is(err, engine.ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
	// The tuple cap trips the same way.
	e2 := engine.New(st, engine.Options{
		Strategy:  engine.StrategyFetchFilter,
		MaxTuples: 3,
	})
	_, err = e2.Query(`
		agentid = 1
		proc p1 read file f1 as evt1
		proc p2 write file f2 as evt2
		with evt1 before evt2
		return count p1`)
	if !errors.Is(err, engine.ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge (tuple cap)", err)
	}
}

func TestCountReturnsSingleCell(t *testing.T) {
	e := newEngine(t, engine.Options{})
	res, err := e.Query(`
		agentid = 2
		(at "03/02/2017")
		proc p write ip i[dstip = "` + gen.AttackerIP + `"] as evt
		return count distinct p`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Columns) != 1 || res.Columns[0] != "count" {
		t.Errorf("columns = %v", res.Columns)
	}
	n, err := strconv.Atoi(res.Rows[0][0])
	if err != nil || n < 1 {
		t.Errorf("count = %q", res.Rows[0][0])
	}
}

func TestSortNumericAwareness(t *testing.T) {
	e := newEngine(t, engine.Options{})
	res, err := e.Query(`
		agentid = 2
		(at "03/02/2017")
		proc p["%sbblv.exe"] write ip i as evt
		return distinct evt.amount
		sort by evt.amount`)
	if err != nil {
		t.Fatal(err)
	}
	var prev int64 = -1
	for _, row := range res.Rows {
		v, err := strconv.ParseInt(row[0], 10, 64)
		if err != nil {
			t.Fatalf("non-numeric amount %q", row[0])
		}
		if v < prev {
			t.Fatalf("amounts not numerically sorted: %d after %d", v, prev)
		}
		prev = v
	}
	if len(res.Rows) < 2 {
		t.Fatal("not enough rows to verify ordering")
	}
}

func TestAnomalyWindowColumnPrefixed(t *testing.T) {
	e := newEngine(t, engine.Options{})
	res, err := e.Query(`
		(at "03/02/2017")
		agentid = 2
		window = 1 min, step = 10 sec
		proc p write ip i[dstip = "` + gen.AttackerIP + `"] as evt
		return p, avg(evt.amount) as amt
		group by p
		having amt > 0`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Columns[0] != "window" {
		t.Errorf("first column = %q, want window", res.Columns[0])
	}
	if len(res.Rows) == 0 {
		t.Fatal("no windows matched")
	}
	if !strings.HasPrefix(res.Rows[0][0], "2017-03-02") {
		t.Errorf("window cell = %q", res.Rows[0][0])
	}
}

// Small helpers keeping the storage query literals readable.
func procType() types.EntityType { return types.EntityProcess }
func fileType() types.EntityType { return types.EntityFile }
func allOps() types.OpSet        { return types.AllOps() }
func exeLike(pattern string) pred.Pred {
	return pred.NewCond(types.AttrExeName, pred.CmpEq, pattern)
}
