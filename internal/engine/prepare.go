package engine

import (
	"context"
	"strings"

	"aiql/internal/parser"
)

// PreparedQuery is a query that has been parsed, compiled and bound to an
// engine once, ready to be executed many times. Repeated investigations —
// the paper's analysts iterating on the same suspicious pattern, or a query
// service replaying popular queries — skip the lex/parse/compile/schedule
// front end entirely and go straight to plan execution.
//
// A PreparedQuery is immutable after Prepare and safe for concurrent use;
// each Execute builds fresh per-run state, so it always observes the
// backend's current contents (events ingested after Prepare are seen).
type PreparedQuery struct {
	eng  *Engine
	plan *Plan
	src  string // normalized source, the cache key
}

// Prepare parses and compiles AIQL source into a reusable PreparedQuery.
func (e *Engine) Prepare(src string) (*PreparedQuery, error) {
	q, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	plan, err := Compile(q)
	if err != nil {
		return nil, err
	}
	return &PreparedQuery{eng: e, plan: plan, src: Normalize(src)}, nil
}

// Execute runs the compiled plan against the engine's backend. Canceling
// ctx aborts the execution promptly.
func (p *PreparedQuery) Execute(ctx context.Context) (*Result, error) {
	return p.eng.Run(ctx, p.plan)
}

// ExecuteOn runs the compiled plan against an explicit backend instead of
// the engine's own — typically a storage.Snapshot, so a query service can
// pin each request to one immutable, generation-stamped view of the store
// while ingestion continues underneath.
func (p *PreparedQuery) ExecuteOn(ctx context.Context, b Backend) (*Result, error) {
	return p.eng.runOn(ctx, p.plan, b)
}

// Src returns the normalized source the query was prepared from.
func (p *PreparedQuery) Src() string { return p.src }

// Patterns returns the number of event patterns in the compiled plan.
func (p *PreparedQuery) Patterns() int { return len(p.plan.Patterns) }

// Normalize canonicalizes AIQL source for use as a cache key: // comments
// are dropped and runs of whitespace outside string literals collapse to a
// single space, so reformatting or re-commenting a query does not defeat
// plan caching. Quoted strings are preserved byte-for-byte — including
// backslash escapes, mirroring the lexer — because "%Program Files%" must
// not equal "%Program  Files%" and an escaped \" must not end the literal.
func Normalize(src string) string {
	var b strings.Builder
	b.Grow(len(src))
	inStr := false
	pendingSpace := false
	for i := 0; i < len(src); i++ {
		c := src[i]
		if inStr {
			b.WriteByte(c)
			switch c {
			case '\\': // escape: the next byte cannot close the literal
				if i+1 < len(src) {
					i++
					b.WriteByte(src[i])
				}
			case '"', '\n': // the lexer ends the literal at either
				inStr = false
			}
			continue
		}
		switch c {
		case ' ', '\t', '\n', '\r':
			pendingSpace = b.Len() > 0
		case '/':
			if i+1 < len(src) && src[i+1] == '/' {
				for i < len(src) && src[i] != '\n' {
					i++
				}
				pendingSpace = b.Len() > 0
				continue
			}
			if pendingSpace {
				b.WriteByte(' ')
				pendingSpace = false
			}
			b.WriteByte(c)
		case '"':
			if pendingSpace {
				b.WriteByte(' ')
				pendingSpace = false
			}
			b.WriteByte(c)
			inStr = true
		default:
			if pendingSpace {
				b.WriteByte(' ')
				pendingSpace = false
			}
			b.WriteByte(c)
		}
	}
	return b.String()
}
