package engine_test

import (
	"testing"

	"aiql/internal/engine"
	"aiql/internal/graphstore"
	"aiql/internal/storage"
)

func TestApplyJoinAgreesOnStoreAndGraph(t *testing.T) {
	src := `
		agentid = 2
		(at "03/02/2017")
		proc p1["%cmd.exe"] start proc p2["%osql.exe"] as evt1
		proc p3["%sqlservr.exe"] write file f1["%backup1.dmp"] as evt2
		proc p4["%sbblv.exe"] read file f1 as evt3
		with evt1 before evt2, evt2 before evt3
		return distinct p1, p2, p3, f1, p4
		sort by p4`
	st := storage.New(storage.Options{})
	st.Ingest(testDataset())
	want, err := engine.New(st, engine.Options{}).Query(src)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("reference rows: %d", len(want.Rows))

	ap, err := engine.New(st, engine.Options{ApplyJoin: true}).Query(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(ap.Rows) != len(want.Rows) {
		t.Errorf("apply on store: %d rows, want %d", len(ap.Rows), len(want.Rows))
	}

	g := graphstore.New()
	g.Ingest(testDataset())
	gp, err := engine.New(g, engine.Options{ApplyJoin: true, DisableSplitDays: true}).Query(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(gp.Rows) != len(want.Rows) {
		t.Errorf("apply on graph: %d rows, want %d", len(gp.Rows), len(want.Rows))
	}

	// Also plain graph without apply.
	gg, err := engine.New(g, engine.Options{Strategy: engine.StrategyBigJoin, DisableSplitDays: true, NoHashJoin: true}).Query(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(gg.Rows) != len(want.Rows) {
		t.Errorf("bigjoin on graph: %d rows, want %d", len(gg.Rows), len(want.Rows))
	}
}
