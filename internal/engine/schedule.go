package engine

import (
	"sort"

	"aiql/internal/storage"
	"aiql/internal/types"
)

// relationshipSchedule implements Algorithm 1 (paper Sec. 5.2).
//
//  1. Every pattern carries a pruning score (computed at compile time from
//     its constraint count).
//  2. Relationships are sorted by type (process and network events ahead of
//     file events) and by the sum of the involved patterns' scores;
//     attribute relationships come before temporal ones at equal rank, so
//     equality joins prune tuple sets before order predicates multiply them.
//  3. The main loop walks the sorted relationships, executing the
//     higher-scoring pattern of each first and using its results to
//     constrain the other side's data query; tuple sets are created,
//     updated, filtered and merged through the map M. Whenever two tuple
//     sets combine, every not-yet-applied relationship covered by the
//     union is applied in the same pass, so intermediate results never
//     outlive the constraints that could prune them.
//  4. Patterns untouched by any relationship are then executed.
//  5. Remaining distinct tuple sets are merged into one.
func (x *execution) relationshipSchedule() (*tupleSet, error) {
	plan := x.plan
	n := len(plan.Patterns)
	executed := make([]bool, n)
	results := make([][]storage.Match, n)
	M := make([]*tupleSet, n)
	applied := make([]bool, len(plan.Joins))

	order := x.sortedJoins()

	// coveredRels gathers every unapplied relationship whose two patterns
	// are both inside the given coverage, and marks them applied.
	coveredRels := func(has func(int) bool) []int {
		rels := applicableJoins(plan.Joins, has, applied)
		for _, ri := range rels {
			applied[ri] = true
		}
		return rels
	}

	for _, ji := range order {
		if err := x.checkCtx(); err != nil {
			return nil, err
		}
		if applied[ji] {
			continue
		}
		j := &plan.Joins[ji]
		a, b := j.A, j.B
		if a == b {
			if !executed[a] {
				ms, err := x.runPattern(a, nil)
				if err != nil {
					return nil, err
				}
				results[a] = ms
				executed[a] = true
				M[a] = x.note(newTupleSet(a, results[a]))
			}
			rels := coveredRels(M[a].has)
			replaceVals(M, M[a], x.note(filterTuples(M[a], plan, rels)))
			continue
		}
		switch {
		case !executed[a] && !executed[b]:
			// Execute the pattern with the higher pruning score first; its
			// matches are materialized because the pushdown constraint needs
			// all of them. The constrained side streams straight into the
			// join and is never held as a full match set.
			first, second := a, b
			if x.score(b) > x.score(a) {
				first, second = b, a
			}
			ms, err := x.runPattern(first, nil)
			if err != nil {
				return nil, err
			}
			results[first] = ms
			executed[first] = true
			pc := x.constraintFromMatches(j, first, len(results[first]), func(i int) *storage.Match {
				return &results[first][i]
			})
			ta := newTupleSet(first, results[first])
			rels := coveredRels(func(p int) bool { return p == a || p == b })
			ts, err := x.joinStream(ta, second, pc, rels)
			if err != nil {
				return nil, err
			}
			executed[second] = true
			x.note(ts)
			M[first], M[second] = ts, ts
		case executed[a] != executed[b]:
			done, todo := a, b
			if executed[b] {
				done, todo = b, a
			}
			src := M[done]
			pc := x.constraintFromMatches(j, done, len(src.rows), func(i int) *storage.Match {
				return src.match(src.rows[i], done)
			})
			rels := coveredRels(func(p int) bool { return src.has(p) || p == todo })
			ts, err := x.joinStream(src, todo, pc, rels)
			if err != nil {
				return nil, err
			}
			executed[todo] = true
			x.note(ts)
			replaceVals(M, src, ts)
			M[todo] = ts
		default:
			ta, tb := M[a], M[b]
			if ta == tb {
				rels := coveredRels(ta.has)
				ts := x.note(filterTuples(ta, plan, rels))
				replaceVals(M, ta, ts)
			} else {
				rels := coveredRels(func(p int) bool { return ta.has(p) || tb.has(p) })
				ts, err := x.joinTuples(ta, tb, rels)
				if err != nil {
					return nil, err
				}
				x.note(ts)
				replaceVals(M, ta, ts)
				replaceVals(M, tb, ts)
			}
		}
	}

	// Step 4: patterns not involved in any relationship.
	for i := 0; i < n; i++ {
		if !executed[i] {
			ms, err := x.runPattern(i, nil)
			if err != nil {
				return nil, err
			}
			results[i] = ms
			executed[i] = true
			M[i] = x.note(newTupleSet(i, results[i]))
		}
	}

	// Step 5: merge remaining distinct tuple sets (cartesian product; no
	// unapplied relationships connect them by construction).
	return x.mergeAll(M)
}

// sortedJoins orders relationship indexes per Algorithm 1 step 2: by event
// type (process, network, then file — using the most selective category of
// the two involved patterns), then by descending pruning-score sum, then
// attribute relationships ahead of temporal ones. With NoScoreSort
// (ablation) the declaration order is kept.
func (x *execution) sortedJoins() []int {
	plan := x.plan
	order := make([]int, len(plan.Joins))
	for i := range order {
		order[i] = i
	}
	if x.eng.opts.NoScoreSort {
		return order
	}
	category := func(ji int) int {
		j := &plan.Joins[ji]
		ca := types.ObjectTypeCategory(plan.Patterns[j.A].Obj.Type)
		cb := types.ObjectTypeCategory(plan.Patterns[j.B].Obj.Type)
		if cb < ca {
			return cb
		}
		return ca
	}
	scoreSum := func(ji int) int {
		j := &plan.Joins[ji]
		return x.score(j.A) + x.score(j.B)
	}
	kindRank := func(ji int) int {
		if plan.Joins[ji].Kind == JoinAttr {
			return 0
		}
		return 1
	}
	sort.SliceStable(order, func(u, v int) bool {
		cu, cv := category(order[u]), category(order[v])
		if cu != cv {
			return cu < cv
		}
		su, sv := scoreSum(order[u]), scoreSum(order[v])
		if su != sv {
			return su > sv
		}
		return kindRank(order[u]) < kindRank(order[v])
	})
	return order
}

// mergeAll reduces the pattern→tupleSet map to a single set covering every
// pattern.
func (x *execution) mergeAll(M []*tupleSet) (*tupleSet, error) {
	span := x.span.Child("merge")
	defer span.End()
	var acc *tupleSet
	merged := 0
	seen := make(map[*tupleSet]bool)
	for _, ts := range M {
		if ts == nil || seen[ts] {
			continue
		}
		seen[ts] = true
		if acc == nil {
			acc = ts
			continue
		}
		next, err := joinTuples(acc, ts, x.plan, nil, x.bud)
		if err != nil {
			return nil, err
		}
		merged++
		acc = x.note(next)
	}
	span.Add("sets_merged", int64(merged))
	if acc != nil {
		span.Add("rows_out", int64(len(acc.rows)))
	}
	return acc, nil
}

// joinTuples is the traced form of the free joinTuples: a materialized
// two-set join under its own span.
func (x *execution) joinTuples(ta, tb *tupleSet, relIdx []int) (*tupleSet, error) {
	span := x.span.Child("join")
	span.Set("kind", "materialized")
	pairsBefore := x.bud.pairs
	ts, err := joinTuples(ta, tb, x.plan, relIdx, x.bud)
	span.Add("rows_in", int64(len(ta.rows)+len(tb.rows)))
	if ts != nil {
		span.Add("rows_out", int64(len(ts.rows)))
	}
	span.Add("pairs", x.bud.pairs-pairsBefore)
	span.End()
	return ts, err
}

// replaceVals implements Algorithm 1's replaceVals(M, T, T'): every pattern
// mapped to the old tuple set now maps to the new one.
func replaceVals(M []*tupleSet, old, new_ *tupleSet) {
	for i := range M {
		if M[i] == old {
			M[i] = new_
		}
	}
}

// fetchAndFilter is the FF baseline (paper Sec. 5.2): execute every data
// query independently with its own constraints, hold all results in memory,
// then assemble tuples in declaration order, filtering by each relationship
// as soon as both of its patterns are present. No pruning-score ordering,
// no constrained execution — and deliberately no streaming either: holding
// every pattern's full result is the cost profile this baseline emulates.
func (x *execution) fetchAndFilter() (*tupleSet, error) {
	plan := x.plan
	n := len(plan.Patterns)
	results := make([][]storage.Match, n)
	for i := 0; i < n; i++ {
		ms, err := x.runPattern(i, nil)
		if err != nil {
			return nil, err
		}
		results[i] = ms
	}
	return x.assembleInOrder(results)
}

// bigJoin emulates the semantics-agnostic relational executor: identical
// join order to FF, but every data query is forced to evaluate predicates
// per event row (no entity pre-resolution, no posting lists), the way a
// row store joins its event table against entity tables inside one large
// SQL statement. runPattern applies ForceScan based on the strategy.
func (x *execution) bigJoin() (*tupleSet, error) {
	return x.fetchAndFilter()
}

// assembleInOrder joins per-pattern results in declaration order.
func (x *execution) assembleInOrder(results [][]storage.Match) (*tupleSet, error) {
	plan := x.plan
	applied := make([]bool, len(plan.Joins))
	acc := x.note(newTupleSet(0, results[0]))
	// Apply any self-relationships on pattern 0.
	for _, ji := range applicableJoins(plan.Joins, acc.has, applied) {
		acc = x.note(filterTuples(acc, plan, []int{ji}))
		applied[ji] = true
	}
	for i := 1; i < len(results); i++ {
		next := newTupleSet(i, results[i])
		cover := func(p int) bool { return acc.has(p) || p == i }
		rels := applicableJoins(plan.Joins, cover, applied)
		merged, err := x.joinTuples(acc, next, rels)
		if err != nil {
			return nil, err
		}
		for _, ji := range rels {
			applied[ji] = true
		}
		acc = x.note(merged)
	}
	return acc, nil
}
