package engine

import (
	"fmt"

	"aiql/internal/ast"
	"aiql/internal/types"
)

// RewriteDependency compiles a dependency query into an equivalent
// multievent query (paper Sec. 5.1: "For an input dependency query, the
// engine compiles it to an equivalent multievent query for execution").
//
// Each <entity op_edge entity> step becomes one event pattern. The arrow
// direction selects the subject: "a ->[op] b" means a performs op on b,
// while "a <-[op] b" means b performs op on a. Adjacent steps share their
// middle entity, so the rewrite assigns every node a variable name (either
// the user's or a synthesized one) and relies on entity-ID reuse to produce
// the chain joins. The forward (backward) keyword adds before (after)
// temporal relationships between consecutive events on the path.
func RewriteDependency(d *ast.Dependency) (*ast.MultiEvent, error) {
	if len(d.Nodes) != len(d.Edges)+1 {
		return nil, fmt.Errorf("aiql: malformed dependency path: %d nodes, %d edges", len(d.Nodes), len(d.Edges))
	}
	// Name every node so adjacent patterns can share entities.
	nodes := make([]ast.EntityRef, len(d.Nodes))
	copy(nodes, d.Nodes)
	for i := range nodes {
		if nodes[i].ID == "" {
			nodes[i].ID = fmt.Sprintf("_dep%d", i)
		}
	}

	m := &ast.MultiEvent{Return: d.Return, SortBy: d.SortBy, SortDesc: d.SortDesc, Top: d.Top}
	evtIDs := make([]string, len(d.Edges))
	emitted := make(map[string]bool, len(nodes))
	for i, edge := range d.Edges {
		left, right := nodes[i], nodes[i+1]
		// Only a node's first occurrence carries its attribute constraint;
		// later occurrences join by entity ID, so repeating the constraint
		// is redundant (a left node always reappears from the previous
		// step; reused IDs form cycles).
		left = stripEmittedCstr(left, emitted)
		right = stripEmittedCstr(right, emitted)
		emitted[left.ID], emitted[right.ID] = true, true
		var subj, obj ast.EntityRef
		switch edge.Dir {
		case "->":
			subj, obj = left, right
		case "<-":
			subj, obj = right, left
		default:
			return nil, fmt.Errorf("aiql: unknown dependency edge direction %q", edge.Dir)
		}
		if st, _ := types.ParseEntityType(subj.Type); st != types.EntityProcess {
			return nil, fmt.Errorf("aiql: dependency edge %d: subject %q is a %s; only processes perform operations (check the arrow direction)",
				i+1, subj.ID, subj.Type)
		}
		evtID := fmt.Sprintf("_depevt%d", i)
		evtIDs[i] = evtID
		m.Patterns = append(m.Patterns, &ast.EventPattern{
			Pos:   edge.Pos,
			Subj:  subj,
			Op:    edge.Op,
			Obj:   obj,
			EvtID: evtID,
		})
	}

	// Temporal order along the path.
	switch d.Direction {
	case "forward":
		for i := 0; i+1 < len(evtIDs); i++ {
			m.Rels = append(m.Rels, &ast.TempRel{LEvt: evtIDs[i], Kind: "before", REvt: evtIDs[i+1]})
		}
	case "backward":
		for i := 0; i+1 < len(evtIDs); i++ {
			m.Rels = append(m.Rels, &ast.TempRel{LEvt: evtIDs[i], Kind: "after", REvt: evtIDs[i+1]})
		}
	case "":
		// Unordered dependency: only the entity chain constrains results.
	default:
		return nil, fmt.Errorf("aiql: unknown dependency direction %q", d.Direction)
	}
	return m, nil
}

// stripEmittedCstr clears the attribute constraint of a node whose ID
// already appeared in an earlier pattern. The entity keeps its ID and thus
// its join role.
func stripEmittedCstr(ref ast.EntityRef, emitted map[string]bool) ast.EntityRef {
	if ref.Cstr != nil && emitted[ref.ID] {
		ref.Cstr = nil
	}
	return ref
}
