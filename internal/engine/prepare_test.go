package engine_test

import (
	"context"
	"testing"

	"aiql/internal/engine"
	"aiql/internal/gen"
	"aiql/internal/storage"
	"aiql/internal/types"
)

// TestPreparedQuerySeesIngestedEvents verifies that a PreparedQuery is a
// compiled plan, not a snapshot: re-executing it after an ingest must
// observe the new events.
func TestPreparedQuerySeesIngestedEvents(t *testing.T) {
	const host = 1
	day := gen.DayStart(1)

	b := gen.NewBuilder(7)
	bash := b.Proc(host, "/bin/bash")
	secret := b.File(host, "/home/alice/.ssh/id_rsa")
	b.Emit(host, bash, secret, types.OpRead, day+1000, 4096)

	st := storage.New(storage.Options{})
	st.Ingest(b.Dataset())
	e := engine.New(st, engine.Options{})

	pq, err := e.Prepare(`
		agentid = 1
		proc p read file f["%id_rsa"] as evt
		return p, f`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := pq.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("before ingest: got %d rows, want 1", len(res.Rows))
	}

	// A second process reads the key; the prepared plan must pick it up.
	scp := types.Entity{
		ID: 1000, Type: types.EntityProcess, AgentID: host,
		Attrs: map[string]string{types.AttrExeName: "/usr/bin/scp", types.AttrPID: "4242"},
	}
	extra := types.NewDataset(
		[]types.Entity{scp},
		[]types.Event{{
			ID: 5000, AgentID: host, Subject: scp.ID, Object: secret,
			Op: types.OpRead, Start: day + 2000, End: day + 2000, Seq: 100, Amount: 4096,
		}},
	)
	gen0 := st.Generation()
	st.Ingest(extra)
	if st.Generation() == gen0 {
		t.Fatal("Ingest did not bump the store generation")
	}

	res, err = pq.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("after ingest: got %d rows, want 2", len(res.Rows))
	}
}

func TestNormalize(t *testing.T) {
	tests := []struct {
		in, want string
	}{
		{"proc p read file f\n\treturn p", "proc p read file f return p"},
		{"  proc   p  ", "proc p"},
		// Whitespace inside string literals is significant.
		{`file f["%Program  Files%"]  return f`, `file f["%Program  Files%"] return f`},
		// An escaped quote does not end the literal (lexer supports \").
		{`file f["a\" b"]  return f`, `file f["a\" b"] return f`},
		{`file f["a\\"]  return f`, `file f["a\\"] return f`},
		// Comments are dropped; a quote inside a comment is not a literal.
		{"proc p // see \"TODO\nread file f return p", "proc p read file f return p"},
		{"// leading comment\nproc p read file f return p", "proc p read file f return p"},
		{"a\r\nb", "a b"},
		{"", ""},
	}
	for _, tt := range tests {
		if got := engine.Normalize(tt.in); got != tt.want {
			t.Errorf("Normalize(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
	a := engine.Normalize("proc p read file f\n  return p, f")
	bNorm := engine.Normalize("proc p read file f return p, f")
	if a != bNorm {
		t.Errorf("reformatted query normalized differently: %q vs %q", a, bNorm)
	}
	// Queries whose string literals differ must never share a cache key.
	x := engine.Normalize(`proc p read file f["a\" b"] return p`)
	y := engine.Normalize(`proc p read file f["a\"   b"] return p`)
	if x == y {
		t.Errorf("distinct escaped literals collided on one key: %q", x)
	}
}
