package golden

import (
	"fmt"
	"math/rand"
	"testing"

	"aiql/internal/engine"
	"aiql/internal/gen"
	"aiql/internal/queries"
	"aiql/internal/storage"
)

// TestHotColdScanDifferential is the three-way property differential for
// the batch scan paths: the same scenario answered (a) hot through the
// columnar shadows, (b) hot through the per-event scalar loop, and (c) cold
// from compressed v3 segments must produce identical result sets over the
// shared random-query distribution — and the counters must prove each store
// really took its intended path.
func TestHotColdScanDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: scan-path differential run")
	}
	ds := gen.Scenario(gen.SmallConfig())

	hot := storage.New(storage.Options{})
	hot.Ingest(ds)
	scalar := storage.New(storage.Options{DisableHotColumnar: true})
	scalar.Ingest(ds)

	// Ingest and compact in one incarnation, then reopen: recovery installs
	// the segments as cold runs, so every event answer below comes off disk.
	dir := t.TempDir()
	popts := storage.PersistOptions{
		SyncEveryBatch: true, FlushInterval: -1, CompactInterval: -1,
	}
	w, err := storage.OpenPersistent(dir, popts)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WarmUp(); err != nil {
		t.Fatal(err)
	}
	if err := w.Ingest(ds); err != nil {
		t.Fatal(err)
	}
	if err := w.Compact(); err != nil {
		t.Fatal(err)
	}
	w.Close()
	p, err := storage.OpenPersistent(dir, popts)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.WarmUp(); err != nil {
		t.Fatal(err)
	}
	if st := p.DurabilityStats(); st.SegmentsV3 != st.Segments || st.Segments == 0 {
		t.Fatalf("cold store is not all-v3: %+v", st)
	}

	engines := map[string]*engine.Engine{
		"hot-columnar": engine.New(hot, engine.Options{}),
		"hot-scalar":   engine.New(scalar, engine.Options{}),
		"cold-v3":      engine.New(p.Store, engine.Options{}),
	}

	// The shared random distribution works at day granularity, which
	// partition selection alone can serve; narrow sub-day windows ride along
	// so block-level zone pruning has something to prove.
	rng := rand.New(rand.NewSource(7))
	var srcs []string
	for i := 0; i < 60; i++ {
		srcs = append(srcs, queries.Random(rng))
	}
	for i := 0; i < 20; i++ {
		day := 1 + rng.Intn(3)
		h := rng.Intn(22)
		srcs = append(srcs, fmt.Sprintf(
			"agentid = %d\n(from \"03/%02d/2017 %02d:00\" to \"03/%02d/2017 %02d:%02d\")\n"+
				"proc p read || write file f as evt\nreturn distinct p, f\nsort by p",
			1+rng.Intn(5), day, h, day, h+1+rng.Intn(2), rng.Intn(60)))
	}
	for i, src := range srcs {
		want := ""
		for _, name := range []string{"hot-columnar", "hot-scalar", "cold-v3"} {
			res, err := engines[name].Query(src)
			if err != nil {
				t.Fatalf("query %d on %s: %v\n%s", i, name, err, src)
			}
			got := queries.Canonical(res.Rows)
			if name == "hot-columnar" {
				want = got
			} else if got != want {
				t.Errorf("query %d: %s disagrees with hot-columnar\n%s", i, name, src)
			}
		}
	}

	hs := hot.ScanStats()
	if hs.HotBatches == 0 || hs.DictVerdictHits == 0 {
		t.Fatalf("hot-columnar store never used the batch path: %+v", hs)
	}
	if ss := scalar.ScanStats(); ss.HotBatches != 0 {
		t.Fatalf("hot-scalar store used the batch path: %+v", ss)
	}
	cs := p.Store.ScanStats()
	if cs.CompressedBytesRead == 0 || cs.CompressedBytesDecode == 0 {
		t.Fatalf("cold store never decoded compressed blocks: %+v", cs)
	}
	if cs.BlocksSkipped == 0 {
		t.Fatalf("cold store pruned nothing across the whole distribution: %+v", cs)
	}
}
