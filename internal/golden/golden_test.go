// Package golden pins the end-to-end behaviour of every published query —
// the full evaluation corpus plus the queries shown in
// docs/QUERY_LANGUAGE.md and run by the examples — against committed
// result fixtures over a deterministic generated store.
//
// The fixtures turn "the corpus still runs" into "the corpus still returns
// exactly these rows": a refactor of the scheduler, storage layer or
// cluster tier that silently changes any result set fails this suite.
// After an intentional behaviour change, regenerate with
//
//	go test ./internal/golden -run TestGoldenCorpus -update
//
// and review the fixture diff like any other code change.
package golden

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"

	"aiql/internal/engine"
	"aiql/internal/gen"
	"aiql/internal/queries"
	"aiql/internal/storage"
)

var update = flag.Bool("update", false, "rewrite testdata/golden.json from current results")

const fixturePath = "testdata/golden.json"

// fixtureResult is one query's pinned outcome. Rows are stored sorted
// lexicographically: queries with tied (or absent) sort keys may present
// the same result set in different orders run to run, and the fixture pins
// the set, not the presentation.
type fixtureResult struct {
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

// docQueries are the queries documented in docs/QUERY_LANGUAGE.md and the
// examples (quickstart, dependency_tracking, anomaly_detection) — the same
// sources seeding the lexer/parser fuzz corpora. They run against the
// generated scenario; several intentionally return no rows here, which the
// fixture pins too (an accidental match is as much a regression as a lost
// one).
var docQueries = []queries.Query{
	{ID: "doc-quickstart", Src: `agentid = 1
(at "03/02/2017")
proc p read file f["%id_rsa"] as evt1
proc p write ip i as evt2
with evt1 before evt2
return p, f, i.dst_ip`},
	{ID: "doc-dependency", Src: `(at "03/02/2017")
agentid = 1
backward: file f1["%chrome_update.exe"] <-[write] proc p1["%GoogleUpdate%"]
          ->[read] ip i1[dstip = "198.51.100.10"]
return f1, p1, i1`},
	{ID: "doc-anomaly", Src: `(at "03/02/2017")
agentid = 5
window = 1 min, step = 10 sec
proc p write ip i[dstip = "10.10.0.250"] as evt
return p, avg(evt.amount) as amt
group by p
having (amt > 2 * (amt + amt[1] + amt[2]) / 3)`},
	{ID: "doc-entity-refs", Src: `agentid = 4
proc p1["%cmd.exe"] read file f1 as evt1
return distinct p1, f1`},
	{ID: "doc-global-constraints", Src: `agentid in (1, 2)
(from "03/01/2017" to "03/03/2017")
proc p read || write file f as evt[amount > 4096]
return distinct p, f
sort by p
top 10`},
}

var (
	engOnce sync.Once
	engVal  *engine.Engine
)

// goldenEngine builds the deterministic store once: SmallConfig with a
// fixed seed is the reference dataset for every fixture.
func goldenEngine() *engine.Engine {
	engOnce.Do(func() {
		st := storage.New(storage.Options{})
		st.Ingest(gen.Scenario(gen.SmallConfig()))
		engVal = engine.New(st, engine.Options{})
	})
	return engVal
}

func allQueries() []queries.Query {
	all := append(queries.CaseStudy(), queries.Behaviors()...)
	return append(all, docQueries...)
}

func sortedRows(rows [][]string) [][]string {
	out := make([][]string, len(rows))
	copy(out, rows)
	sort.Slice(out, func(i, j int) bool {
		return strings.Join(out[i], "\x1f") < strings.Join(out[j], "\x1f")
	})
	return out
}

func TestGoldenCorpus(t *testing.T) {
	eng := goldenEngine()
	got := make(map[string]fixtureResult)
	for _, q := range allQueries() {
		if _, dup := got[q.ID]; dup {
			t.Fatalf("duplicate query id %q in corpus", q.ID)
		}
		res, err := eng.Query(q.Src)
		if err != nil {
			t.Fatalf("%s failed to execute: %v\nquery:\n%s", q.ID, err, q.Src)
		}
		got[q.ID] = fixtureResult{Columns: res.Columns, Rows: sortedRows(res.Rows)}
	}

	if *update {
		if err := os.MkdirAll(filepath.Dir(fixturePath), 0o755); err != nil {
			t.Fatal(err)
		}
		raw, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(fixturePath, append(raw, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d fixtures", fixturePath, len(got))
		return
	}

	raw, err := os.ReadFile(fixturePath)
	if err != nil {
		t.Fatalf("read fixtures (run with -update to generate): %v", err)
	}
	var want map[string]fixtureResult
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatalf("parse %s: %v", fixturePath, err)
	}

	for id, g := range got {
		w, ok := want[id]
		if !ok {
			t.Errorf("%s: no fixture committed (run with -update)", id)
			continue
		}
		if !equalStrings(g.Columns, w.Columns) {
			t.Errorf("%s: columns = %v, fixture has %v", id, g.Columns, w.Columns)
		}
		if !equalRows(g.Rows, w.Rows) {
			t.Errorf("%s: result set changed: %d rows vs fixture's %d (run with -update if intended)",
				id, len(g.Rows), len(w.Rows))
		}
	}
	for id := range want {
		if _, ok := got[id]; !ok {
			t.Errorf("stale fixture %s: query no longer in corpus (run with -update)", id)
		}
	}
}

// TestGoldenCorpusNotVacuous guards the harness itself: if every fixture
// were empty, the suite would pass while checking nothing.
func TestGoldenCorpusNotVacuous(t *testing.T) {
	raw, err := os.ReadFile(fixturePath)
	if err != nil {
		t.Skipf("no fixtures yet: %v", err)
	}
	var want map[string]fixtureResult
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}
	nonEmpty := 0
	for _, w := range want {
		if len(w.Rows) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < len(want)/2 {
		t.Errorf("only %d of %d fixtures have rows; the reference dataset is not exercising the corpus", nonEmpty, len(want))
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalRows(a, b [][]string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !equalStrings(a[i], b[i]) {
			return false
		}
	}
	return true
}
