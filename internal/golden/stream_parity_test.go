package golden

import (
	"encoding/json"
	"os"
	"testing"

	"aiql/internal/engine"
	"aiql/internal/gen"
	"aiql/internal/parser"
	"aiql/internal/storage"
	"aiql/internal/stream"
	"aiql/internal/types"
)

// streamParityWindowMs spans the whole reference dataset, so window expiry
// never explains a divergence in this suite.
const streamParityWindowMs = int64(1) << 41

// TestGoldenCorpusStreamParity is the batch/stream equivalence wall: every
// streamable fixture in the golden corpus, registered as a standing rule
// and replayed event-by-event through the ingest tap, must emit exactly the
// rows the batch engine's committed fixture pins. One shared replay feeds
// every rule at once — the matcher's op-indexed routing and per-rule join
// state are exercised under full corpus load, not one rule at a time.
func TestGoldenCorpusStreamParity(t *testing.T) {
	raw, err := os.ReadFile(fixturePath)
	if err != nil {
		t.Fatalf("read fixtures (run TestGoldenCorpus -update first): %v", err)
	}
	var want map[string]fixtureResult
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}

	st := storage.New(storage.Options{})
	m := stream.NewMatcher(st, stream.Options{
		MaxRules:   256,
		BufferSize: 1 << 14, // the replay ring must retain every emission
	})
	st.SetIngestObserver(m.OnIngest)

	streamable := 0
	ruleIDs := make(map[string]string) // query id -> rule id
	for _, q := range allQueries() {
		plan, err := compileQuery(q.Src)
		if err != nil {
			t.Fatalf("%s no longer compiles: %v", q.ID, err)
		}
		if plan.Streamable() != nil {
			continue
		}
		streamable++
		info, err := m.Register(stream.RuleSpec{ID: "g-" + q.ID, Query: q.Src, WindowMs: streamParityWindowMs})
		if err != nil {
			t.Fatalf("%s: register: %v", q.ID, err)
		}
		ruleIDs[q.ID] = info.ID
	}
	if streamable < 20 {
		t.Fatalf("only %d fixtures are streamable; the parity wall is not exercising the corpus", streamable)
	}

	// Replay the reference dataset: entities first (a standing rule matches
	// an event against the entities known at its arrival), then every event
	// as its own ingest batch — the per-event path a live agent stream
	// takes, not the bulk path the fixtures were generated with.
	ds := gen.Scenario(gen.SmallConfig())
	st.Ingest(types.NewDataset(ds.Entities, nil))
	for i := range ds.Events {
		st.Ingest(types.NewDataset(nil, []types.Event{ds.Events[i]}))
	}

	checked := 0
	for qid, ruleID := range ruleIDs {
		fix, ok := want[qid]
		if !ok {
			t.Errorf("%s: no fixture committed", qid)
			continue
		}
		sub, info, err := m.Subscribe(ruleID, 0)
		if err != nil {
			t.Fatalf("%s: subscribe: %v", qid, err)
		}
		if info.Seq > 1<<14 {
			t.Fatalf("%s: %d emissions overflowed the replay ring; grow BufferSize", qid, info.Seq)
		}
		var rows [][]string
	drain:
		for {
			select {
			case em := <-sub.C():
				rows = append(rows, em.Row)
			default:
				break drain
			}
		}
		sub.Close()
		got := sortedRows(rows)
		if !equalRows(got, fix.Rows) {
			t.Errorf("%s: stream emitted %d rows, fixture pins %d — batch/stream parity broken\nstream: %v\nfixture: %v",
				qid, len(got), len(fix.Rows), got, fix.Rows)
		}
		checked++
	}
	t.Logf("replayed %d events through %d standing rules; %d fixtures verified", len(ds.Events), streamable, checked)
}

// TestGoldenCorpusStreamParityWithBackfill covers the other registration
// order: the dataset is ingested first and every streamable rule registers
// with backfill — the snapshot replay must produce the same fixture rows
// the live replay does.
func TestGoldenCorpusStreamParityWithBackfill(t *testing.T) {
	raw, err := os.ReadFile(fixturePath)
	if err != nil {
		t.Fatalf("read fixtures: %v", err)
	}
	var want map[string]fixtureResult
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}

	st := storage.New(storage.Options{})
	m := stream.NewMatcher(st, stream.Options{MaxRules: 256, BufferSize: 1 << 14})
	st.SetIngestObserver(m.OnIngest)
	st.Ingest(gen.Scenario(gen.SmallConfig()))

	checked := 0
	for _, q := range allQueries() {
		plan, err := compileQuery(q.Src)
		if err != nil {
			t.Fatalf("%s no longer compiles: %v", q.ID, err)
		}
		if plan.Streamable() != nil {
			continue
		}
		info, err := m.Register(stream.RuleSpec{
			ID: "b-" + q.ID, Query: q.Src, WindowMs: streamParityWindowMs, Backfill: true,
		})
		if err != nil {
			t.Fatalf("%s: register: %v", q.ID, err)
		}
		sub, _, err := m.Subscribe(info.ID, 0)
		if err != nil {
			t.Fatalf("%s: subscribe: %v", q.ID, err)
		}
		var rows [][]string
	drain:
		for {
			select {
			case em := <-sub.C():
				if !em.Backfill {
					t.Errorf("%s: pre-registration data emitted without the backfill flag", q.ID)
				}
				rows = append(rows, em.Row)
			default:
				break drain
			}
		}
		sub.Close()
		got := sortedRows(rows)
		if fix := want[q.ID]; !equalRows(got, fix.Rows) {
			t.Errorf("%s: backfill emitted %d rows, fixture pins %d\nstream: %v\nfixture: %v",
				q.ID, len(got), len(fix.Rows), got, fix.Rows)
		}
		checked++
	}
	if checked < 20 {
		t.Fatalf("only %d fixtures checked", checked)
	}
}

func compileQuery(src string) (*engine.Plan, error) {
	q, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	return engine.Compile(q)
}
