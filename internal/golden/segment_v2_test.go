package golden

import (
	"fmt"
	"math/rand"
	"testing"

	"aiql/internal/bench"
	"aiql/internal/engine"
	"aiql/internal/gen"
	"aiql/internal/queries"
	"aiql/internal/storage"
	"aiql/internal/types"
)

// buildSegmentedDir ingests the reference scenario into dir in two halves,
// compacting each into a segment: the first under firstLegacy (v1 row
// format when true), the second under secondLegacy. The directory ends with
// two segments of the requested format mix and an empty WAL.
func buildSegmentedDir(t *testing.T, dir string, firstLegacy, secondLegacy bool) {
	t.Helper()
	ds := gen.Scenario(gen.SmallConfig())
	batches := bench.SplitBatches(ds, 4)
	phase := func(legacy bool, bs []*types.Dataset) {
		t.Helper()
		opts := storage.PersistOptions{
			SyncEveryBatch: true, FlushInterval: -1, CompactInterval: -1,
			LegacySegmentV1: legacy,
		}
		p, err := storage.OpenPersistent(dir, opts)
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		if err := p.WarmUp(); err != nil {
			t.Fatal(err)
		}
		for _, b := range bs {
			if err := p.Ingest(b); err != nil {
				t.Fatal(err)
			}
		}
		if err := p.Compact(); err != nil {
			t.Fatal(err)
		}
	}
	phase(firstLegacy, batches[:2])
	phase(secondLegacy, batches[2:])
}

// TestSegmentFormatsAnswerGoldenCorpus reopens stores recovered purely from
// v1 segments, purely from v2 segments, and from one of each, and requires
// every one of them to answer the full golden corpus exactly like the
// uninterrupted in-memory reference.
func TestSegmentFormatsAnswerGoldenCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: segment-format corpus run")
	}
	configs := []struct {
		name                      string
		firstLegacy, secondLegacy bool
	}{
		{"v1-only", true, true},
		{"v2-only", false, false},
		{"mixed-v1-v2", true, false},
	}
	ref := goldenEngine()
	for _, cfg := range configs {
		t.Run(cfg.name, func(t *testing.T) {
			dir := t.TempDir()
			buildSegmentedDir(t, dir, cfg.firstLegacy, cfg.secondLegacy)
			re, err := storage.OpenPersistent(dir, storage.PersistOptions{
				SyncEveryBatch: true, FlushInterval: -1, CompactInterval: -1,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer re.Close()
			if err := re.WarmUp(); err != nil {
				t.Fatal(err)
			}
			wantV2 := 0
			if !cfg.firstLegacy {
				wantV2++
			}
			if !cfg.secondLegacy {
				wantV2++
			}
			if st := re.DurabilityStats(); st.Segments != 2 || st.SegmentsV2 != wantV2 {
				t.Fatalf("segments = %d (%d v2), want 2 (%d v2)", st.Segments, st.SegmentsV2, wantV2)
			}
			eng := engine.New(re.Store, engine.Options{})
			for _, q := range allQueries() {
				wantRes, err := ref.Query(q.Src)
				if err != nil {
					t.Fatalf("%s on reference store: %v", q.ID, err)
				}
				gotRes, err := eng.Query(q.Src)
				if err != nil {
					t.Fatalf("%s on %s store: %v", q.ID, cfg.name, err)
				}
				if !equalStrings(gotRes.Columns, wantRes.Columns) {
					t.Errorf("%s: columns %v, want %v", q.ID, gotRes.Columns, wantRes.Columns)
					continue
				}
				if !equalRows(sortedRows(gotRes.Rows), sortedRows(wantRes.Rows)) {
					t.Errorf("%s: %s store returned %d rows, reference %d — result sets differ",
						q.ID, cfg.name, len(gotRes.Rows), len(wantRes.Rows))
				}
			}
		})
	}
}

// TestZoneMapPruningDifferential runs the shared random-query distribution
// against the same v2-segment directory with zone-map pruning enabled and
// disabled. Every query must return the identical row set, and the pruning
// run's counters must prove blocks were actually skipped — the two halves
// of "pruning is free": no rows lost, real work saved.
func TestZoneMapPruningDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: pruning differential run")
	}
	dir := t.TempDir()
	buildSegmentedDir(t, dir, false, false)

	// The shared random distribution covers the semantic space at day
	// granularity; partition selection alone handles day windows, so a set
	// of narrow sub-day windows rides along to exercise block-level time
	// pruning — the case only zone maps can serve.
	rng := rand.New(rand.NewSource(42))
	var srcs []string
	for i := 0; i < 40; i++ {
		srcs = append(srcs, queries.Random(rng))
	}
	for i := 0; i < 20; i++ {
		day := 1 + rng.Intn(3)
		h := rng.Intn(22)
		srcs = append(srcs, fmt.Sprintf(
			"agentid = %d\n(from \"03/%02d/2017 %02d:00\" to \"03/%02d/2017 %02d:%02d\")\n"+
				"proc p read || write file f as evt\nreturn distinct p, f\nsort by p",
			1+rng.Intn(5), day, h, day, h+1+rng.Intn(2), rng.Intn(60)))
	}

	run := func(disablePruning bool) ([]string, storage.ScanStats) {
		t.Helper()
		opts := storage.PersistOptions{
			SyncEveryBatch: true, FlushInterval: -1, CompactInterval: -1,
			Store: storage.Options{DisableZoneMaps: disablePruning},
		}
		p, err := storage.OpenPersistent(dir, opts)
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		if err := p.WarmUp(); err != nil {
			t.Fatal(err)
		}
		eng := engine.New(p.Store, engine.Options{})
		out := make([]string, len(srcs))
		for i, src := range srcs {
			res, err := eng.Query(src)
			if err != nil {
				t.Fatalf("query %d (pruning disabled=%v): %v\n%s", i, disablePruning, err, src)
			}
			out[i] = queries.Canonical(res.Rows)
		}
		return out, p.Store.ScanStats()
	}

	prunedRows, prunedStats := run(false)
	exhaustiveRows, exhaustiveStats := run(true)

	for i := range srcs {
		if prunedRows[i] != exhaustiveRows[i] {
			t.Errorf("query %d: pruning changed the result set\n%s", i, srcs[i])
		}
	}
	if prunedStats.BlocksSkipped == 0 {
		t.Fatal("pruning run skipped no blocks — zone maps are not engaged")
	}
	if exhaustiveStats.BlocksSkipped != 0 {
		t.Fatalf("pruning-disabled run skipped %d blocks, want 0", exhaustiveStats.BlocksSkipped)
	}
	if prunedStats.BlocksDecoded >= exhaustiveStats.BlocksDecoded {
		t.Fatalf("pruned run decoded %d blocks, exhaustive %d — pruning saved nothing",
			prunedStats.BlocksDecoded, exhaustiveStats.BlocksDecoded)
	}
}
