package golden

import (
	"os"
	"path/filepath"
	"testing"

	"aiql/internal/bench"
	"aiql/internal/engine"
	"aiql/internal/gen"
	"aiql/internal/storage"
)

// TestRecoveredStoreAnswersGoldenCorpus is the end-to-end recovery
// acceptance: the reference dataset is ingested into a persistent store in
// batches with a compaction mid-stream, the process "crashes" (the store
// is abandoned mid-flight: a torn WAL tail is simulated on top), and the
// reopened store must answer the entire golden corpus — every case-study,
// behaviour and documentation query — exactly as the uninterrupted
// in-memory store does.
func TestRecoveredStoreAnswersGoldenCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: recovery corpus run")
	}
	ds := gen.Scenario(gen.SmallConfig())
	dir := t.TempDir()
	opts := storage.PersistOptions{
		SyncEveryBatch:  true,
		FlushInterval:   -1,
		CompactInterval: -1,
	}
	p, err := storage.OpenPersistent(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Ingest in 5 batches: entities first, then event slices; compact
	// after the second batch so recovery exercises segments + WAL replay.
	batches := bench.SplitBatches(ds, 5)
	for i, b := range batches {
		if err := p.Ingest(b); err != nil {
			t.Fatal(err)
		}
		if i == 1 {
			if err := p.Compact(); err != nil {
				t.Fatal(err)
			}
		}
	}
	// "Crash": release the store (a dead process drops its directory
	// lock; every batch was already fsynced, so Close changes nothing on
	// disk) and tear the last 3 bytes off the WAL tail — recovery must
	// truncate, not fail. (The final record's payload is hundreds of KB;
	// losing its tail drops that whole batch, so re-ingest it after
	// reopening, exactly as an at-least-once ingestion pipeline would.)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	walDir := filepath.Join(dir, "wal")
	ents, err := os.ReadDir(walDir)
	if err != nil {
		t.Fatal(err)
	}
	last := filepath.Join(walDir, ents[len(ents)-1].Name())
	fi, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	re, err := storage.OpenPersistent(dir, opts)
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer re.Close()
	if err := re.WarmUp(); err != nil {
		t.Fatalf("warm up: %v", err)
	}
	// The torn tail dropped the final batch; redeliver it.
	if err := re.Ingest(batches[len(batches)-1]); err != nil {
		t.Fatal(err)
	}

	ref := goldenEngine()
	rec := engine.New(re.Store, engine.Options{})
	for _, q := range allQueries() {
		wantRes, err := ref.Query(q.Src)
		if err != nil {
			t.Fatalf("%s on reference store: %v", q.ID, err)
		}
		gotRes, err := rec.Query(q.Src)
		if err != nil {
			t.Fatalf("%s on recovered store: %v", q.ID, err)
		}
		if !equalStrings(gotRes.Columns, wantRes.Columns) {
			t.Errorf("%s: columns %v, want %v", q.ID, gotRes.Columns, wantRes.Columns)
			continue
		}
		if !equalRows(sortedRows(gotRes.Rows), sortedRows(wantRes.Rows)) {
			t.Errorf("%s: recovered store returned %d rows, uninterrupted run %d — result sets differ",
				q.ID, len(gotRes.Rows), len(wantRes.Rows))
		}
	}
}
