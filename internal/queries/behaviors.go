package queries

import (
	"fmt"

	"aiql/internal/gen"
)

// Behaviors returns the 19 attack-behaviour queries of the performance and
// conciseness evaluations (paper Sec. 6.3.1): 5 multi-step attack
// behaviours (a1–a5), 3 dependency-tracking behaviours (d1–d3), 5
// real-world malware behaviours (v1–v5), and 6 abnormal system behaviours
// (s1–s6; s5 and s6 are anomaly queries with no SQL/Cypher/SPL
// equivalents, exactly as in the paper).
func Behaviors() []Query {
	day := "(at \"" + gen.DateStr(gen.BehaviorDay) + "\")"
	web := agent(gen.AgentWebServer)
	dev := agent(gen.AgentDevBox)
	client := agent(gen.AgentWinClient)
	mail := agent(gen.AgentMailSrv)

	var qs []Query
	add := func(id, group string, patterns int, anomaly bool, src string) {
		qs = append(qs, Query{ID: id, Group: group, Patterns: patterns, Anomaly: anomaly, Src: src})
	}

	// --- Multi-step attack behaviours (second APT, a1–a5).
	add("a1", "a", 2, false, day+`
`+web+`
proc p1["%apache%"] write file f1["%shell.php"] as evt1
proc p1 start proc p2["%bash"] as evt2
with evt1 before evt2
return distinct p1, f1, p2`)
	add("a2", "a", 3, false, day+`
`+web+`
proc p1["%bash"] read file f1["/etc/passwd"] as evt1
proc p1 start proc p2["%python"] as evt2
proc p2 connect ip i1[dstip = "`+gen.AttackerIP2+`"] as evt3
with evt1 before evt2, evt2 before evt3
return distinct p1, f1, p2, i1`)
	add("a3", "a", 3, false, day+`
`+web+`
proc p1["%python"] write file f1["%.pwn.so"] as evt1
proc p1 start proc p2["%sudo"] as evt2
proc p2 read file f2["/etc/shadow"] as evt3
with evt1 before evt2, evt2 before evt3
return distinct p1, f1, p2, f2`)
	add("a4", "a", 4, false, day+`
proc p1["%sudo", agentid = `+fmt.Sprint(gen.AgentWebServer)+`] start proc p2["%bash"] as evt1
proc p2 start proc p3["%ssh"] as evt2
proc p3 connect proc p4[agentid = `+fmt.Sprint(gen.AgentDevBox)+`] as evt3
proc p4 start proc p5["%bash"] as evt4
with evt1 before evt2, evt2 before evt3, evt3 before evt4
return distinct p1, p2, p3, p4, p5`)
	add("a5", "a", 4, false, day+`
`+dev+`
proc p1["%tar"] read file f1["/home/dev/project%"] as evt1
proc p1 write file f2["%.src.tgz"] as evt2
proc p2["%curl"] read file f2 as evt3
proc p2 write ip i1[dstip = "`+gen.AttackerIP2+`"] as evt4
with evt1 before evt2, evt2 before evt3, evt3 before evt4
return distinct p1, f1, f2, p2, i1`)

	// --- Dependency tracking behaviours (d1–d3).
	add("d1", "d", 2, false, day+`
`+client+`
backward: file f1["%chrome_update.exe"] <-[write] proc p1["%GoogleUpdate%"] ->[read] ip i1[dstip = "`+gen.UpdateCDNIP+`"]
return f1, p1, i1`)
	add("d2", "d", 2, false, day+`
`+client+`
backward: file f1["%jre_update.exe"] <-[write] proc p1["%jucheck%"] ->[read] ip i1[dstip = "`+gen.UpdateCDNIP+`"]
return f1, p1, i1`)
	add("d3", "d", 4, false, day+`
forward: proc p1["%/bin/cp%", agentid = `+fmt.Sprint(gen.AgentWebServer)+`] ->[write] file f1["/var/www/%info_stealer%"]
<-[read] proc p2["%apache%"]
->[connect] proc p3[agentid = `+fmt.Sprint(gen.AgentDevBox)+`]
->[write] file f2["%info_stealer%"]
return f1, p1, p2, p3, f2`)

	// --- Real-world malware behaviours (v1–v5, Table 4 samples).
	vAgent := func(i int) string { return agent(gen.MalwareAgent(i)) }
	add("v1", "v", 3, false, day+`
`+vAgent(0)+`
proc p1 start proc p2["%`+gen.MalwareSamples[0].Name+`%"] as evt1
proc p2 connect ip i1[dstip = "`+gen.MalwareC2IP+`"] as evt2
proc p2 write file f1["%sysbot.dll"] as evt3
with evt1 before evt2, evt2 before evt3
return distinct p1, p2, i1, f1`)
	add("v2", "v", 3, false, day+`
`+vAgent(1)+`
proc p1 start proc p2["%`+gen.MalwareSamples[1].Name+`%"] as evt1
proc p2 write file f1["%hooker.dll"] as evt2
proc p2 write file f2["%keylog.txt"] as evt3
with evt1 before evt2, evt2 before evt3
return distinct p1, p2, f1, f2`)
	add("v3", "v", 3, false, day+`
`+vAgent(2)+`
proc p1 start proc p2["%`+gen.MalwareSamples[2].Name+`%"] as evt1
proc p2 write file f1["%autorun.inf"] as evt2
proc p2 write file f2["%etc%hosts"] as evt3
with evt1 before evt2, evt2 before evt3
return distinct p1, p2, f1, f2`)
	add("v4", "v", 3, false, day+`
`+vAgent(3)+`
proc p1["%`+gen.MalwareSamples[3].Name+`%"] read file f1["%7z.exe"] as evt1
proc p1 write file f1 as evt2
proc p1 connect ip i1[dstip = "`+gen.MalwareC2IP+`"] as evt3
with evt1 before evt2
return distinct p1, f1, i1`)
	add("v5", "v", 3, false, day+`
`+vAgent(4)+`
proc p1 start proc p2["%`+gen.MalwareSamples[4].Name+`%"] as evt1
proc p2 write file f1["%keylog.txt"] as evt2
proc p2 connect ip i1[dstip = "`+gen.MalwareC2IP+`"] as evt3
with evt1 before evt2, evt2 before evt3
return distinct p1, p2, f1, i1`)

	// --- Abnormal system behaviours (s1–s6).
	add("s1", "s", 2, false, day+`
`+dev+`
proc p2 start proc p1 as evt1
proc p1 read file f1["%.viminfo" || "%.bash_history"] as evt2
with evt1 before evt2
return distinct p2, p1, f1
sort by p2, p1`)
	add("s2", "s", 2, false, day+`
`+web+`
proc p1["%apache%"] start proc p2 as evt1
proc p2 connect ip i1[dstport = 9001] as evt2
with evt1 before evt2
return distinct p1, p2, i1`)
	add("s3", "s", 1, false, day+`
`+client+`
proc p read ip i[dstip = "`+gen.BeaconIP+`"] as evt
return p, count(i) as n
group by p
having n > 100`)
	add("s4", "s", 2, false, day+`
`+web+`
proc p1 write file f1["/var/log%"] as evt1
proc p1 delete file f1 as evt2
with evt1 before evt2
return distinct p1, f1`)
	add("s5", "s", 1, true, day+`
`+mail+`
window = 1 min, step = 10 sec
proc p write ip i[dstip = "`+gen.BackupSrvIP+`"] as evt
return p, avg(evt.amount) as amt
group by p
having (amt > 2 * (amt + amt[1] + amt[2]) / 3)`)
	add("s6", "s", 1, true, day+`
`+client+`
window = 1 min, step = 10 sec
proc p read file f["%Documents%"] as evt
return p, count(distinct f) as freq
group by p
having freq > 5 && (freq - EWMA(freq, 0.5)) / EWMA(freq, 0.5) > 0.2`)

	return qs
}

// BehaviorGroups is the reporting order of the paper's Figs. 6–8.
var BehaviorGroups = []string{"a", "d", "v", "s"}

// GroupTitle names a behaviour family as in the paper's figure captions.
func GroupTitle(g string) string {
	switch g {
	case "a":
		return "Multi-step attack behaviors"
	case "d":
		return "Dependency tracking behaviors"
	case "v":
		return "Real-world malware behaviors"
	case "s":
		return "Abnormal system behaviors"
	default:
		return g
	}
}
