package queries

import (
	"sync"
	"testing"

	"aiql/internal/engine"
	"aiql/internal/gen"
	"aiql/internal/parser"
	"aiql/internal/storage"
	"aiql/internal/types"
)

var (
	dsOnce sync.Once
	dsVal  *types.Dataset
)

func scenario() *types.Dataset {
	dsOnce.Do(func() { dsVal = gen.Scenario(gen.SmallConfig()) })
	return dsVal
}

func newEngine(tb testing.TB) *engine.Engine {
	tb.Helper()
	st := storage.New(storage.Options{})
	st.Ingest(scenario())
	return engine.New(st, engine.Options{})
}

// Paper Table 3: multievent queries and event patterns per attack step
// (the anomaly query c5-a is reported separately in the paper).
var table3 = map[string]struct{ queries, patterns int }{
	"c1": {1, 3},
	"c2": {8, 27},
	"c3": {2, 4},
	"c4": {8, 35},
	"c5": {7, 18},
}

func TestCaseStudyMatchesTable3(t *testing.T) {
	byStep := ByStep(CaseStudy())
	for _, step := range Steps {
		want := table3[step]
		var qs []Query
		for _, q := range byStep[step] {
			if !q.Anomaly {
				qs = append(qs, q)
			}
		}
		if len(qs) != want.queries {
			t.Errorf("%s: %d queries, want %d", step, len(qs), want.queries)
		}
		patterns := 0
		for _, q := range qs {
			patterns += q.Patterns
		}
		if patterns != want.patterns {
			t.Errorf("%s: %d patterns, want %d", step, patterns, want.patterns)
		}
	}
}

func TestCorpusParsesAndDeclaredShape(t *testing.T) {
	all := append(CaseStudy(), Behaviors()...)
	seen := make(map[string]bool)
	for _, q := range all {
		if seen[q.ID] {
			t.Errorf("duplicate query id %s", q.ID)
		}
		seen[q.ID] = true
		parsed, err := parser.Parse(q.Src)
		if err != nil {
			t.Errorf("%s: parse: %v", q.ID, err)
			continue
		}
		if parsed.IsAnomaly() != q.Anomaly {
			t.Errorf("%s: anomaly flag = %v, declared %v", q.ID, parsed.IsAnomaly(), q.Anomaly)
		}
		plan, err := engine.Compile(parsed)
		if err != nil {
			t.Errorf("%s: compile: %v", q.ID, err)
			continue
		}
		if len(plan.Patterns) != q.Patterns {
			t.Errorf("%s: %d compiled patterns, declared %d", q.ID, len(plan.Patterns), q.Patterns)
		}
	}
	if len(all) != 27+19 {
		t.Errorf("corpus has %d queries, want 46 (26 multievent + 1 anomaly + 19 behaviours)", len(all))
	}
}

func TestCorpusFindsInjectedBehaviors(t *testing.T) {
	e := newEngine(t)
	for _, q := range append(CaseStudy(), Behaviors()...) {
		q := q
		t.Run(q.ID, func(t *testing.T) {
			res, err := e.Query(q.Src)
			if err != nil {
				t.Fatalf("execute: %v", err)
			}
			if len(res.Rows) == 0 {
				t.Fatalf("query %s found nothing; the injected artifacts and the query drifted apart", q.ID)
			}
		})
	}
}

func TestBehaviorsCoverAllGroups(t *testing.T) {
	counts := map[string]int{}
	for _, q := range Behaviors() {
		counts[q.Group]++
	}
	want := map[string]int{"a": 5, "d": 3, "v": 5, "s": 6}
	for g, n := range want {
		if counts[g] != n {
			t.Errorf("group %s: %d queries, want %d", g, counts[g], n)
		}
	}
}
