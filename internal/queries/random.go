package queries

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// Canonical renders a result set order-independently: rows are joined with
// a unit separator, sorted, and joined with a record separator. Equivalence
// suites compare result sets through it, because two correct executions may
// legitimately present the same set in different orders (tied or absent
// sort keys, shard-order vs partition-order gathers).
func Canonical(rows [][]string) string {
	keys := make([]string, len(rows))
	for i, r := range rows {
		keys[i] = strings.Join(r, "\x1f")
	}
	sort.Strings(keys)
	return strings.Join(keys, "\x1e")
}

// Random builds a random but semantically valid multievent query against
// the entities the generator (internal/gen) is known to produce. The
// equivalence suites share it: the engine's scheduler-equivalence fuzz test
// and the cluster property tests all draw from the same query distribution,
// so "every scheduler agrees" and "every deployment shape agrees" are
// checked over the same space.
func Random(rng *rand.Rand) string {
	agents := []int{1, 2, 3, 4, 5}
	days := []string{"03/01/2017", "03/02/2017", "03/03/2017"}
	procPreds := []string{
		``, `["%cmd.exe"]`, `["%sbblv.exe"]`, `["%apache%"]`, `["%chrome%"]`,
		`["%svchost%"]`, `[user = "root"]`,
	}
	filePreds := []string{
		``, `["%backup1.dmp"]`, `["/var/log%"]`, `["%.dll"]`, `["%Documents%"]`,
	}
	ipPreds := []string{``, `[dstip = "203.0.113.129"]`, `[dstport = 443]`}
	fileOps := []string{"read", "write", "read || write", "execute", "delete", "!read"}
	procOps := []string{"start"}
	ipOps := []string{"connect", "read || write", "write"}

	n := 2 + rng.Intn(2) // 2 or 3 patterns
	var b strings.Builder
	fmt.Fprintf(&b, "agentid = %d\n", agents[rng.Intn(len(agents))])
	fmt.Fprintf(&b, "(at %q)\n", days[rng.Intn(len(days))])

	var rets []string
	for i := 0; i < n; i++ {
		subj := fmt.Sprintf("p%d", i)
		// Sometimes reuse the previous subject to exercise implicit joins.
		if i > 0 && rng.Intn(2) == 0 {
			subj = fmt.Sprintf("p%d", i-1)
		} else {
			rets = append(rets, subj)
		}
		switch rng.Intn(3) {
		case 0: // file pattern
			fmt.Fprintf(&b, "proc %s%s %s file f%d%s as evt%d\n",
				subj, procPreds[rng.Intn(len(procPreds))],
				fileOps[rng.Intn(len(fileOps))], i,
				filePreds[rng.Intn(len(filePreds))], i)
			rets = append(rets, fmt.Sprintf("f%d", i))
		case 1: // process pattern
			fmt.Fprintf(&b, "proc %s%s %s proc c%d as evt%d\n",
				subj, procPreds[rng.Intn(len(procPreds))],
				procOps[rng.Intn(len(procOps))], i, i)
			rets = append(rets, fmt.Sprintf("c%d", i))
		default: // network pattern
			fmt.Fprintf(&b, "proc %s%s %s ip i%d%s as evt%d\n",
				subj, procPreds[rng.Intn(len(procPreds))],
				ipOps[rng.Intn(len(ipOps))], i,
				ipPreds[rng.Intn(len(ipPreds))], i)
			rets = append(rets, fmt.Sprintf("i%d", i))
		}
	}
	// Temporal chain over consecutive patterns, occasionally with a range.
	var rels []string
	for i := 0; i+1 < n; i++ {
		switch rng.Intn(3) {
		case 0:
			rels = append(rels, fmt.Sprintf("evt%d before evt%d", i, i+1))
		case 1:
			rels = append(rels, fmt.Sprintf("evt%d after evt%d", i+1, i))
		default:
			rels = append(rels, fmt.Sprintf("evt%d before[0-60 minutes] evt%d", i, i+1))
		}
	}
	if len(rels) > 0 {
		fmt.Fprintf(&b, "with %s\n", strings.Join(rels, ", "))
	}
	fmt.Fprintf(&b, "return distinct %s\n", strings.Join(rets, ", "))
	fmt.Fprintf(&b, "sort by %s", rets[0])
	return b.String()
}
