// Package queries holds the evaluation query corpus: the 26 multievent
// queries plus 1 anomaly query of the APT case-study investigation
// (paper Sec. 6.2, Table 3, Fig. 5), and the 19 attack-behaviour queries of
// the performance and conciseness evaluations (paper Sec. 6.3.1, Figs. 6–8).
//
// The paper's investigation is iterative: each attack step starts from a
// detector alert, and successive queries add event patterns as evidence
// accumulates ("4-5 iterations are needed before finding a complete query
// with 5-7 event patterns"). The corpus reconstructs those iterations
// against the artifacts internal/gen injects, with the per-step query and
// event-pattern counts matching paper Table 3 exactly:
//
//	step  queries  patterns
//	c1    1        3
//	c2    8        27
//	c3    2        4
//	c4    8        35
//	c5    7        18  (plus the anomaly query c5-a, reported separately)
package queries

import (
	"fmt"

	"aiql/internal/gen"
)

// Query is one corpus entry.
type Query struct {
	// ID is the paper's identifier (c2-3, a1, d3, v5, s6...).
	ID string
	// Group is the attack step or behaviour family (c1..c5, a, d, v, s).
	Group string
	// Patterns is the number of event patterns (dependency queries count
	// their edges), used to validate the corpus against Table 3.
	Patterns int
	// Anomaly marks sliding-window queries, which SQL/Cypher/SPL cannot
	// express (s5, s6, c5-1).
	Anomaly bool
	// Src is the AIQL text.
	Src string
}

func agent(a int) string { return fmt.Sprintf("agentid = %d", a) }

// CaseStudy returns the 27 queries of the APT attack investigation in
// execution order: the investigation starts from the exfiltration alert
// (c5), works back through penetration (c4), privilege escalation (c3),
// infection (c2), and initial compromise (c1). They are keyed c1-1..c5-7
// for reporting in the paper's order.
func CaseStudy() []Query {
	day := "(at \"" + gen.DateStr(gen.APT1Day) + "\")"
	client := agent(gen.AgentWinClient)
	db := agent(gen.AgentDBServer)
	atk := gen.AttackerIP

	var qs []Query
	add := func(id, group string, patterns int, anomaly bool, src string) {
		qs = append(qs, Query{ID: id, Group: group, Patterns: patterns, Anomaly: anomaly, Src: src})
	}

	// --- c1: initial compromise (1 query, 3 patterns).
	add("c1-1", "c1", 3, false, day+`
`+client+`
proc p1["%outlook.exe"] write file f1["%invoice.xls"] as evt1
proc p1 start proc p2["%excel.exe"] as evt2
proc p2 read file f1 as evt3
with evt1 before evt2, evt2 before evt3
return distinct p1, p2, f1`)

	// --- c2: malware infection (8 queries, 27 patterns).
	add("c2-1", "c2", 2, false, day+`
`+client+`
proc p1["%outlook.exe"] start proc p2["%excel.exe"] as evt1
proc p2 read file f1["%invoice.xls"] as evt2
with evt1 before evt2
return distinct p1, p2, f1`)
	add("c2-2", "c2", 2, false, day+`
`+client+`
proc p1["%excel.exe"] write file f1["%invupd.exe"] as evt1
proc p1 start proc p2["%invupd.exe"] as evt2
with evt1 before evt2
return distinct p1, f1, p2`)
	add("c2-3", "c2", 3, false, day+`
`+client+`
proc p1["%outlook.exe"] start proc p2["%excel.exe"] as evt1
proc p2 write file f1["%invupd.exe"] as evt2
proc p2 start proc p3["%invupd.exe"] as evt3
with evt1 before evt2, evt2 before evt3
return distinct p1, p2, f1, p3`)
	add("c2-4", "c2", 3, false, day+`
`+client+`
proc p1["%excel.exe"] start proc p2["%invupd.exe"] as evt1
proc p2 connect ip i1[dstip = "`+atk+`"] as evt2
proc p2 write ip i2[dstip = "`+atk+`"] as evt3
with evt1 before evt2, evt2 before evt3
return distinct p1, p2, i1`)
	add("c2-5", "c2", 4, false, day+`
`+client+`
proc p1["%outlook.exe"] start proc p2["%excel.exe"] as evt1
proc p2 read file f1["%invoice.xls"] as evt2
proc p2 write file f2["%invupd.exe"] as evt3
proc p2 start proc p3["%invupd.exe"] as evt4
with evt1 before evt2, evt2 before evt3, evt3 before evt4
return distinct p1, p2, f1, f2, p3`)
	add("c2-6", "c2", 4, false, day+`
`+client+`
proc p1["%excel.exe"] write file f1["%invupd.exe"] as evt1
proc p1 start proc p2["%invupd.exe"] as evt2
proc p2 connect ip i1[dstip = "`+atk+`"] as evt3
proc p2 write ip i1 as evt4
with evt1 before evt2, evt2 before evt3, evt3 before evt4
return distinct p1, f1, p2, i1`)
	add("c2-7", "c2", 4, false, day+`
`+client+`
proc p1["%invupd.exe"] start proc p2["%cmd.exe"] as evt1
proc p2 write file f1["%gsecdump%"] as evt2
proc p2 start proc p3["%gsecdump%"] as evt3
proc p3 write file f2["%creds.txt"] as evt4
with evt1 before evt2, evt2 before evt3, evt3 before evt4
return distinct p1, p2, f1, p3, f2`)
	add("c2-8", "c2", 5, false, day+`
`+client+`
proc p1["%outlook.exe"] start proc p2["%excel.exe"] as evt1
proc p2 read file f1["%invoice.xls"] as evt2
proc p2 write file f2["%invupd.exe"] as evt3
proc p2 start proc p3["%invupd.exe"] as evt4
proc p3 connect ip i1[dstip = "`+atk+`"] as evt5
with evt1 before evt2, evt2 before evt3, evt3 before evt4, evt4 before evt5
return distinct p1, p2, f1, f2, p3, i1`)

	// --- c3: privilege escalation (2 queries, 4 patterns).
	add("c3-1", "c3", 2, false, day+`
`+client+`
proc p1 write file f1["%gsecdump%"] as evt1
proc p2 start proc p3["%gsecdump%"] as evt2
with evt1 before evt2
return distinct p1, f1, p2, p3`)
	add("c3-2", "c3", 2, false, day+`
`+client+`
proc p1["%gsecdump%"] read file f1["%SAM"] as evt1
proc p1 write file f2["%creds.txt"] as evt2
with evt1 before evt2
return distinct p1, f1, f2`)

	// --- c4: penetration into the database server (8 queries, 35 patterns).
	add("c4-1", "c4", 2, false, day+`
`+db+`
proc p1 write file f1["%sbblv.exe"] as evt1
proc p2 start proc p3["%sbblv.exe"] as evt2
with evt1 before evt2
return distinct p1, f1, p2, p3`)
	add("c4-2", "c4", 3, false, day+`
`+db+`
proc p1 write file f1["%dropper.vbs"] as evt1
proc p2["%wscript.exe"] read file f1 as evt2
proc p2 write file f2["%sbblv.exe"] as evt3
with evt1 before evt2, evt2 before evt3
return distinct p1, f1, p2, f2`)
	add("c4-3", "c4", 4, false, day+`
`+db+`
proc p1 write file f1["%dropper.vbs"] as evt1
proc p2["%wscript.exe"] read file f1 as evt2
proc p2 write file f2["%sbblv.exe"] as evt3
proc p2 start proc p3["%sbblv.exe"] as evt4
with evt1 before evt2, evt2 before evt3, evt3 before evt4
return distinct p1, f1, p2, f2, p3`)
	add("c4-4", "c4", 4, false, day+`
`+db+`
proc p1["%cmd.exe"] start proc p2["%wscript.exe"] as evt1
proc p2 read file f1["%dropper.vbs"] as evt2
proc p2 write file f2["%sbblv.exe"] as evt3
proc p3["%sbblv.exe"] connect ip i1[dstip = "`+atk+`"] as evt4
with evt1 before evt2, evt2 before evt3, evt3 before evt4
return distinct p1, p2, f1, f2, p3, i1`)
	add("c4-5", "c4", 5, false, day+`
`+db+`
proc p1["%cmd.exe"] write file f1["%dropper.vbs"] as evt1
proc p1 start proc p2["%wscript.exe"] as evt2
proc p2 read file f1 as evt3
proc p2 write file f2["%sbblv.exe"] as evt4
proc p2 start proc p3["%sbblv.exe"] as evt5
with evt1 before evt2, evt2 before evt3, evt3 before evt4, evt4 before evt5
return distinct p1, f1, p2, f2, p3`)
	add("c4-6", "c4", 5, false, day+`
`+db+`
proc p1["%cmd.exe"] start proc p2["%wscript.exe"] as evt1
proc p2 read file f1["%dropper.vbs"] as evt2
proc p2 write file f2["%sbblv.exe"] as evt3
proc p2 start proc p3["%sbblv.exe"] as evt4
proc p3 connect ip i1[dstip = "`+atk+`"] as evt5
with evt1 before evt2, evt2 before evt3, evt3 before evt4, evt4 before evt5
return distinct p1, p2, f1, f2, p3, i1`)
	add("c4-7", "c4", 6, false, day+`
proc pm["%invupd.exe", agentid = `+fmt.Sprint(gen.AgentWinClient)+`] connect proc pc[agentid = `+fmt.Sprint(gen.AgentDBServer)+`] as evt0
proc pc write file f1["%dropper.vbs"] as evt1
proc pc start proc p2["%wscript.exe"] as evt2
proc p2 read file f1 as evt3
proc p2 write file f2["%sbblv.exe"] as evt4
proc p2 start proc p3["%sbblv.exe"] as evt5
with evt0 before evt1, evt1 before evt2, evt2 before evt3, evt3 before evt4, evt4 before evt5
return distinct pm, pc, f1, p2, f2, p3`)
	add("c4-8", "c4", 6, false, day+`
proc pm["%invupd.exe", agentid = `+fmt.Sprint(gen.AgentWinClient)+`] connect proc pc[agentid = `+fmt.Sprint(gen.AgentDBServer)+`] as evt0
proc pc write file f1["%dropper.vbs"] as evt1
proc pc start proc p2["%wscript.exe"] as evt2
proc p2 write file f2["%sbblv.exe"] as evt3
proc p2 start proc p3["%sbblv.exe"] as evt4
proc p3 connect ip i1[dstip = "`+atk+`"] as evt5
with evt0 before evt1, evt1 before evt2, evt2 before evt3, evt3 before evt4, evt4 before evt5
return distinct pm, pc, f1, p2, f2, p3, i1`)

	// --- c5: data exfiltration (7 multievent queries, 18 patterns, plus
	// the anomaly query the investigation starts from — paper Query 5.
	// Table 3 counts only the 26 multievent queries, so the anomaly query
	// is keyed c5-a and excluded from the per-step tallies).
	add("c5-a", "c5", 1, true, day+`
`+db+`
window = 1 min, step = 10 sec
proc p write ip i[dstip = "`+atk+`"] as evt
return p, avg(evt.amount) as amt
group by p
having (amt > 2 * (amt + amt[1] + amt[2]) / 3)`)
	add("c5-1", "c5", 1, false, day+`
`+db+`
proc p write ip i[dstip = "`+atk+`"] as evt
return distinct p, i`)
	add("c5-2", "c5", 2, false, day+`
`+db+`
proc p1["%sbblv.exe"] read || write file f1 as evt1
proc p1 read || write ip i1[dstip = "`+atk+`"] as evt2
with evt1 before evt2
return distinct p1, f1, i1, evt1.optype, evt1.access`)
	add("c5-3", "c5", 2, false, day+`
`+db+`
proc p1 write file f1["%backup1.dmp"] as evt1
proc p2["%sbblv.exe"] read file f1 as evt2
with evt1 before evt2
return distinct p1, f1, p2`)
	add("c5-4", "c5", 3, false, day+`
`+db+`
proc p1["%sqlservr.exe"] write file f1["%backup1.dmp"] as evt1
proc p2["%sbblv.exe"] read file f1 as evt2
proc p2 write ip i1[dstip = "`+atk+`"] as evt3
with evt1 before evt2, evt2 before evt3
return distinct p1, f1, p2, i1`)
	add("c5-5", "c5", 3, false, day+`
`+db+`
proc p1["%cmd.exe"] start proc p2["%osql.exe"] as evt1
proc p2 connect proc p3["%sqlservr.exe"] as evt2
proc p3 write file f1["%backup1.dmp"] as evt3
with evt1 before evt2, evt2 before evt3
return distinct p1, p2, p3, f1`)
	add("c5-6", "c5", 3, false, day+`
`+db+`
proc p1["%cmd.exe"] start proc p2["%osql.exe"] as evt1
proc p3["%sqlservr.exe"] write file f1["%backup1.dmp"] as evt2
proc p4["%sbblv.exe"] read file f1 as evt3
with evt1 before evt2, evt2 before evt3
return distinct p1, p2, p3, f1, p4`)
	add("c5-7", "c5", 4, false, day+`
`+db+`
proc p1["%cmd.exe"] start proc p2["%osql.exe"] as evt1
proc p3["%sqlservr.exe"] write file f1["%backup1.dmp"] as evt2
proc p4["%sbblv.exe"] read file f1 as evt3
proc p4 read || write ip i1[dstip = "`+atk+`"] as evt4
with evt1 before evt2, evt2 before evt3, evt3 before evt4
return distinct p1, p2, p3, f1, p4, i1`)

	return qs
}

// ByStep groups the case-study queries by attack step, in c1..c5 order.
func ByStep(qs []Query) map[string][]Query {
	out := make(map[string][]Query)
	for _, q := range qs {
		out[q.Group] = append(out[q.Group], q)
	}
	return out
}

// Steps is the reporting order of paper Table 3.
var Steps = []string{"c1", "c2", "c3", "c4", "c5"}
