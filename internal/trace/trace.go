// Package trace serializes datasets as JSON-lines, the interchange format
// between the generator tool (cmd/aiqlgen) and the query CLI (cmd/aiql) —
// the stand-in for the paper's agent-to-server event stream.
//
// Each line is one record: entity records first, then event records, both
// tagged with a "kind" discriminator so streams are self-describing and can
// be concatenated.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"aiql/internal/types"
)

// entityRec is the wire form of an entity.
type entityRec struct {
	Kind    string            `json:"kind"`
	ID      uint64            `json:"id"`
	Type    string            `json:"type"`
	AgentID int               `json:"agentid"`
	Attrs   map[string]string `json:"attrs"`
}

// eventRec is the wire form of an event.
type eventRec struct {
	Kind     string `json:"kind"`
	ID       uint64 `json:"id"`
	AgentID  int    `json:"agentid"`
	Subject  uint64 `json:"subject"`
	Object   uint64 `json:"object"`
	Op       string `json:"op"`
	Start    int64  `json:"start"`
	End      int64  `json:"end"`
	Seq      uint64 `json:"seq"`
	Amount   int64  `json:"amount,omitempty"`
	FailCode int    `json:"failcode,omitempty"`
}

// Write streams a dataset as JSON lines.
func Write(w io.Writer, d *types.Dataset) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	enc := json.NewEncoder(bw)
	for i := range d.Entities {
		e := &d.Entities[i]
		rec := entityRec{
			Kind: "entity", ID: uint64(e.ID), Type: e.Type.String(),
			AgentID: e.AgentID, Attrs: e.Attrs,
		}
		if err := enc.Encode(&rec); err != nil {
			return fmt.Errorf("trace: write entity %d: %w", e.ID, err)
		}
	}
	for i := range d.Events {
		ev := &d.Events[i]
		rec := eventRec{
			Kind: "event", ID: uint64(ev.ID), AgentID: ev.AgentID,
			Subject: uint64(ev.Subject), Object: uint64(ev.Object),
			Op: ev.Op.String(), Start: ev.Start, End: ev.End,
			Seq: ev.Seq, Amount: ev.Amount, FailCode: ev.FailCode,
		}
		if err := enc.Encode(&rec); err != nil {
			return fmt.Errorf("trace: write event %d: %w", ev.ID, err)
		}
	}
	return bw.Flush()
}

// Read parses a JSON-lines stream back into a dataset.
func Read(r io.Reader) (*types.Dataset, error) {
	var entities []types.Entity
	var events []types.Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var kind struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal(raw, &kind); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		switch kind.Kind {
		case "entity":
			var rec entityRec
			if err := json.Unmarshal(raw, &rec); err != nil {
				return nil, fmt.Errorf("trace: line %d: %w", line, err)
			}
			t, ok := types.ParseEntityType(rec.Type)
			if !ok {
				return nil, fmt.Errorf("trace: line %d: unknown entity type %q", line, rec.Type)
			}
			entities = append(entities, types.Entity{
				ID: types.EntityID(rec.ID), Type: t, AgentID: rec.AgentID, Attrs: rec.Attrs,
			})
		case "event":
			var rec eventRec
			if err := json.Unmarshal(raw, &rec); err != nil {
				return nil, fmt.Errorf("trace: line %d: %w", line, err)
			}
			op, ok := types.ParseOp(rec.Op)
			if !ok {
				return nil, fmt.Errorf("trace: line %d: unknown operation %q", line, rec.Op)
			}
			events = append(events, types.Event{
				ID: types.EventID(rec.ID), AgentID: rec.AgentID,
				Subject: types.EntityID(rec.Subject), Object: types.EntityID(rec.Object),
				Op: op, Start: rec.Start, End: rec.End, Seq: rec.Seq,
				Amount: rec.Amount, FailCode: rec.FailCode,
			})
		default:
			return nil, fmt.Errorf("trace: line %d: unknown record kind %q", line, kind.Kind)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return types.NewDataset(entities, events), nil
}
