package trace

import (
	"bytes"
	"strings"
	"testing"

	"aiql/internal/gen"
	"aiql/internal/types"
)

func TestRoundTrip(t *testing.T) {
	ds := gen.Scenario(gen.Config{Hosts: 10, Days: 3, BackgroundPerHostDay: 200, Seed: 3})
	var buf bytes.Buffer
	if err := Write(&buf, ds); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Entities) != len(ds.Entities) {
		t.Errorf("entities = %d, want %d", len(got.Entities), len(ds.Entities))
	}
	if len(got.Events) != len(ds.Events) {
		t.Fatalf("events = %d, want %d", len(got.Events), len(ds.Events))
	}
	// Events are stored sorted; the round trip must preserve every field.
	for i := range ds.Events {
		a, b := ds.Events[i], got.Events[i]
		if a != b {
			t.Fatalf("event %d differs: %+v vs %+v", i, a, b)
		}
	}
	// Entity attributes survive.
	for i := range ds.Entities {
		want := &ds.Entities[i]
		have := got.Entity(want.ID)
		if have == nil {
			t.Fatalf("entity %d lost", want.ID)
		}
		if have.Type != want.Type || have.AgentID != want.AgentID {
			t.Fatalf("entity %d header differs", want.ID)
		}
		for k, v := range want.Attrs {
			if have.Attrs[k] != v {
				t.Fatalf("entity %d attr %q = %q, want %q", want.ID, k, have.Attrs[k], v)
			}
		}
	}
}

func TestReadErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string
	}{
		{"garbage", "not json\n", "line 1"},
		{"unknown kind", `{"kind":"widget"}` + "\n", "unknown record kind"},
		{"bad entity type", `{"kind":"entity","id":1,"type":"registry"}` + "\n", "unknown entity type"},
		{"bad op", `{"kind":"event","id":1,"op":"frobnicate"}` + "\n", "unknown operation"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Read(strings.NewReader(tc.in))
			if err == nil {
				t.Fatal("accepted malformed input")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestReadSkipsBlankLines(t *testing.T) {
	in := `{"kind":"entity","id":1,"type":"file","agentid":1,"attrs":{"name":"/x"}}

{"kind":"event","id":1,"agentid":1,"subject":1,"object":1,"op":"read","start":5,"end":6,"seq":1}
`
	ds, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Entities) != 1 || len(ds.Events) != 1 {
		t.Errorf("parsed %d entities, %d events", len(ds.Entities), len(ds.Events))
	}
}

func TestReadUnsortedEventsGetSorted(t *testing.T) {
	in := `{"kind":"event","id":1,"agentid":1,"subject":1,"object":2,"op":"read","start":500,"seq":2}
{"kind":"event","id":2,"agentid":1,"subject":1,"object":2,"op":"read","start":100,"seq":1}
`
	ds, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if ds.Events[0].ID != 2 {
		t.Error("Read must deliver a time-sorted dataset")
	}
}

func TestEmptyDataset(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, types.NewDataset(nil, nil)); err != nil {
		t.Fatal(err)
	}
	ds, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Entities) != 0 || len(ds.Events) != 0 {
		t.Error("empty round trip not empty")
	}
}
