package gen

import (
	"fmt"

	"aiql/internal/types"
)

// Attack scheduling: the APT case study runs on day 1, every other
// evaluated behaviour on day 2. Configs must have Days >= 3.
const (
	APT1Day     = 1
	BehaviorDay = 2
)

// Artifacts of the APT case study (paper Sec. 6.2, steps c1–c5). The query
// corpus references these names, so injector and queries cannot drift.
const (
	ExeOutlook  = `C:\Program Files\Microsoft Office\outlook.exe`
	ExeExcel    = `C:\Program Files\Microsoft Office\excel.exe`
	ExeCmd      = `C:\Windows\System32\cmd.exe`
	ExeOsql     = `C:\Windows\System32\osql.exe`
	ExeSqlservr = `C:\Program Files\Microsoft SQL Server\sqlservr.exe`
	ExeWscript  = `C:\Windows\System32\wscript.exe`
	ExeMal      = `C:\Users\alice\AppData\Roaming\invupd.exe`
	ExeGsecdump = `C:\Users\alice\AppData\Local\Temp\gsecdump.exe`
	ExeSbblv    = `C:\Windows\Temp\sbblv.exe`
	FileInvoice = `C:\Users\alice\Downloads\invoice.xls`
	FileCreds   = `C:\Users\alice\AppData\Local\Temp\creds.txt`
	FileDropper = `C:\Windows\Temp\dropper.vbs`
	FileDump    = `C:\SQLData\backup1.dmp`
)

// Artifacts of the second APT (behaviours a1–a5).
const (
	ExeApache    = "/usr/sbin/apache2"
	ExeBash      = "/bin/bash"
	ExePython    = "/usr/bin/python"
	ExeSudo      = "/usr/bin/sudo"
	ExeSSH       = "/usr/bin/ssh"
	ExeSSHD      = "/usr/sbin/sshd"
	ExeTar       = "/usr/bin/tar"
	ExeCurl      = "/usr/bin/curl"
	FileWebshell = "/var/www/html/uploads/shell.php"
	FilePwnSo    = "/tmp/.pwn.so"
	FileShadow   = "/etc/shadow"
	FileAuthKeys = "/home/dev/.ssh/authorized_keys"
	FileSrcTgz   = "/tmp/.src.tgz"
)

// Artifacts of the dependency-tracking behaviours d1–d3.
const (
	ExeGoogleUpdate = `C:\Program Files\Google\Update\GoogleUpdate.exe`
	ExeJucheck      = `C:\Program Files\Java\jucheck.exe`
	FileChromeUpd   = `C:\Program Files\Google\Update\chrome_update.exe`
	FileJavaUpd     = `C:\Program Files\Java\jre_update.exe`
	ExeCp           = "/bin/cp"
	ExeWget         = "/usr/bin/wget"
	FileStealerSrv  = "/var/www/html/info_stealer.sh"
	FileStealerDst  = "/tmp/info_stealer.sh"
)

// Artifacts of the abnormal system behaviours s1–s6.
const (
	ExeProbe     = "/tmp/.probe"
	FileViminfo  = "/home/dev/.viminfo"
	FileBashHist = "/home/dev/.bash_history"
	ExeNetcat    = "/usr/bin/nc"
	ExeBeacon    = `C:\Users\alice\AppData\Roaming\updchk.exe`
	ExeBackup    = `C:\Program Files\Backup\bkup.exe`
	ExeIndexer   = `C:\Users\alice\AppData\Roaming\searchidx.exe`
	BeaconIP     = "203.0.113.55"
	BackupSrvIP  = "10.10.0.250"
)

// MalwareSample describes one Table 4 malware execution (paper Sec. 6.3.1).
type MalwareSample struct {
	ID       string // v1..v5
	Name     string // MD5 name from VirusSign
	Category string
}

// MalwareSamples reproduces paper Table 4.
var MalwareSamples = []MalwareSample{
	{"v1", "7dd95111e9e100b6243ca96b9b322120", "Trojan.Sysbot"},
	{"v2", "425327783e88bb6492753849bc43b7a0", "Trojan.Hooker"},
	{"v3", "ee111901739531d6963ab1ee3ecaf280", "Virus.Autorun"},
	{"v4", "4e720458c357310da684018f4a254dd0", "Virus.Sysbot"},
	{"v5", "7dd95111e9e100b6243ca96b9b322120", "Trojan.Hooker"},
}

// MalwareC2IP is the command-and-control endpoint of all malware samples.
const MalwareC2IP = "203.0.113.200"

// MalwareAgent returns the workstation sample i runs on: the fixed
// workstations 6..10, so query corpus and injector agree across dataset
// scales (configs must have Hosts >= 10).
func MalwareAgent(i int) int { return AgentMailSrv + 1 + i }

// MalwareExe returns the dropped executable path for a sample.
func MalwareExe(s MalwareSample) string {
	return `C:\Users\alice\Downloads\` + s.Name + `.exe`
}

const minute = int64(60 * 1000)
const second = int64(1000)

// InjectAPT1 plants the paper's case-study APT (c1–c5) on day 1:
// spear-phishing Excel macro on the Windows client, backdoor, credential
// dump, penetration into the database server, and data exfiltration to the
// attacker's host (paper Fig. 4 and Sec. 6.2).
func InjectAPT1(b *Builder, cfg Config) {
	t := DayStart(APT1Day) + 9*60*minute // 09:00

	// --- c1: initial compromise: the crafted email's attachment is saved
	// by the Outlook client.
	outlook := b.Proc(AgentWinClient, ExeOutlook)
	invoice := b.File(AgentWinClient, FileInvoice)
	b.Emit(AgentWinClient, outlook, invoice, types.OpWrite, t, 214016)

	// --- c2: malware infection: the victim opens the Excel file through
	// Outlook; the macro drops and runs the malware (CVE-2008-0081), which
	// opens a backdoor.
	t += 3 * minute
	excel := b.ProcInstance(AgentWinClient, ExeExcel)
	b.Emit(AgentWinClient, outlook, excel, types.OpStart, t, 0)
	b.Emit(AgentWinClient, excel, invoice, types.OpRead, t+10*second, 214016)
	mal := b.File(AgentWinClient, ExeMal)
	b.Emit(AgentWinClient, excel, mal, types.OpWrite, t+20*second, 88064)
	malProc := b.ProcInstance(AgentWinClient, ExeMal)
	b.Emit(AgentWinClient, excel, malProc, types.OpStart, t+30*second, 0)
	backdoor := b.Conn(AgentWinClient, AttackerIP, 4444)
	b.Emit(AgentWinClient, malProc, backdoor, types.OpConnect, t+40*second, 0)
	b.Emit(AgentWinClient, malProc, backdoor, types.OpWrite, t+50*second, 4096)

	// --- c3: privilege escalation: port scan for the database, then the
	// credential-dumping tool.
	t += 20 * minute
	for i := 0; i < 12; i++ {
		scan := b.Conn(AgentWinClient, fmt.Sprintf("10.10.0.%d", 1+i%cfg.Hosts), 1433)
		b.Emit(AgentWinClient, malProc, scan, types.OpConnect, t+int64(i)*2*second, 0)
	}
	cmd1 := b.ProcInstance(AgentWinClient, ExeCmd)
	b.Emit(AgentWinClient, malProc, cmd1, types.OpStart, t+1*minute, 0)
	gsec := b.File(AgentWinClient, ExeGsecdump)
	b.Emit(AgentWinClient, cmd1, gsec, types.OpWrite, t+2*minute, 51200)
	gsecProc := b.ProcInstance(AgentWinClient, ExeGsecdump)
	b.Emit(AgentWinClient, cmd1, gsecProc, types.OpStart, t+3*minute, 0)
	sam := b.File(AgentWinClient, `C:\Windows\System32\config\SAM`)
	b.Emit(AgentWinClient, gsecProc, sam, types.OpRead, t+3*minute+20*second, 65536)
	creds := b.File(AgentWinClient, FileCreds)
	b.Emit(AgentWinClient, gsecProc, creds, types.OpWrite, t+4*minute, 2048)
	b.Emit(AgentWinClient, malProc, creds, types.OpRead, t+5*minute, 2048)
	b.Emit(AgentWinClient, malProc, backdoor, types.OpWrite, t+5*minute+30*second, 2048)

	// --- c4: penetration into the database server: with the credentials,
	// the attacker delivers a VBScript that drops a second backdoor.
	t += 30 * minute
	dbCmd := b.ProcInstance(AgentDBServer, ExeCmd)
	b.CrossHostConnect(AgentWinClient, malProc, AgentDBServer, dbCmd, 1433, t)
	dropper := b.File(AgentDBServer, FileDropper)
	b.Emit(AgentDBServer, dbCmd, dropper, types.OpWrite, t+1*minute, 12288)
	wscript := b.ProcInstance(AgentDBServer, ExeWscript)
	b.Emit(AgentDBServer, dbCmd, wscript, types.OpStart, t+2*minute, 0)
	b.Emit(AgentDBServer, wscript, dropper, types.OpRead, t+2*minute+10*second, 12288)
	sbblvFile := b.File(AgentDBServer, ExeSbblv)
	b.Emit(AgentDBServer, wscript, sbblvFile, types.OpWrite, t+3*minute, 149504)
	sbblv := b.ProcInstance(AgentDBServer, ExeSbblv)
	b.Emit(AgentDBServer, wscript, sbblv, types.OpStart, t+4*minute, 0)
	backdoor2 := b.Conn(AgentDBServer, AttackerIP, 4444)
	b.Emit(AgentDBServer, sbblv, backdoor2, types.OpConnect, t+5*minute, 0)

	// --- c5: data exfiltration: osql dumps the database, sbblv sends the
	// dump back to the attacker.
	t += 40 * minute
	osql := b.ProcInstance(AgentDBServer, ExeOsql)
	b.Emit(AgentDBServer, dbCmd, osql, types.OpStart, t, 0)
	sqlservr := b.Proc(AgentDBServer, ExeSqlservr)
	b.Emit(AgentDBServer, osql, sqlservr, types.OpConnect, t+30*second, 0)
	dump := b.File(AgentDBServer, FileDump)
	b.Emit(AgentDBServer, sqlservr, dump, types.OpWrite, t+2*minute, 734003200)
	// Normal-looking DLL reads around the dump read, as in the paper's
	// Query 6 narrative ("out of the other normal DLL files").
	for i, dll := range []string{`C:\Windows\System32\sqlncli.dll`, `C:\Windows\System32\kernel32.dll`} {
		d := b.File(AgentDBServer, dll)
		b.Emit(AgentDBServer, sbblv, d, types.OpRead, t+3*minute+int64(i)*second, 90112)
	}
	b.Emit(AgentDBServer, sbblv, dump, types.OpRead, t+4*minute, 734003200)

	// Exfiltration traffic to the attacker: ~30 minutes of low-rate
	// keep-alive, then the large burst the anomaly detector flags
	// (Query 5's moving-average spike).
	exfil := b.Conn(AgentDBServer, AttackerIP, 443)
	base := t + 5*minute
	for i := int64(0); i < 180; i++ {
		b.Emit(AgentDBServer, sbblv, exfil, types.OpWrite, base+i*10*second, 1024+b.rng.Int63n(512))
	}
	burst := base + 180*10*second
	for i := int64(0); i < 18; i++ {
		b.Emit(AgentDBServer, sbblv, exfil, types.OpWrite, burst+i*10*second, 40*1024*1024+b.rng.Int63n(1<<20))
	}
	// Contrast traffic so the anomaly query's group-by has company.
	sqlagent := b.Proc(AgentDBServer, `C:\Program Files\Microsoft SQL Server\sqlagent.exe`)
	mon := b.Conn(AgentDBServer, "10.10.0.251", 443)
	for i := int64(0); i < 120; i++ {
		b.Emit(AgentDBServer, sqlagent, mon, types.OpWrite, base+i*15*second, 2048+b.rng.Int63n(1024))
	}
}

// InjectAPT2 plants the second APT (behaviours a1–a5) on day 2: webshell
// upload on the web server, reconnaissance, local privilege escalation,
// lateral movement to the developer box, and source-tree exfiltration.
func InjectAPT2(b *Builder, cfg Config) {
	_ = cfg
	t := DayStart(BehaviorDay) + 14*60*minute // 14:00

	// --- a1: initial exploit: webshell upload, apache spawns a shell.
	apache := b.Proc(AgentWebServer, ExeApache)
	shell := b.File(AgentWebServer, FileWebshell)
	b.Emit(AgentWebServer, apache, shell, types.OpWrite, t, 3072)
	bash := b.ProcInstance(AgentWebServer, ExeBash)
	b.Emit(AgentWebServer, apache, bash, types.OpStart, t+30*second, 0)

	// --- a2: reconnaissance and C2 channel.
	t += 5 * minute
	for i, f := range []string{"/etc/passwd", "/etc/hosts", "/var/log/auth.log"} {
		fe := b.File(AgentWebServer, f)
		b.Emit(AgentWebServer, bash, fe, types.OpRead, t+int64(i)*10*second, 4096)
	}
	py := b.ProcInstance(AgentWebServer, ExePython)
	b.Emit(AgentWebServer, bash, py, types.OpStart, t+1*minute, 0)
	c2 := b.Conn(AgentWebServer, AttackerIP2, 8080)
	b.Emit(AgentWebServer, py, c2, types.OpConnect, t+90*second, 0)
	b.Emit(AgentWebServer, py, c2, types.OpWrite, t+100*second, 8192)

	// --- a3: privilege escalation.
	t += 10 * minute
	pwn := b.File(AgentWebServer, FilePwnSo)
	b.Emit(AgentWebServer, py, pwn, types.OpWrite, t, 24576)
	sudo := b.ProcInstance(AgentWebServer, ExeSudo)
	b.Emit(AgentWebServer, py, sudo, types.OpStart, t+30*second, 0)
	shadow := b.File(AgentWebServer, FileShadow)
	b.Emit(AgentWebServer, sudo, shadow, types.OpRead, t+1*minute, 2048)
	rootsh := b.ProcInstance(AgentWebServer, ExeBash)
	b.Emit(AgentWebServer, sudo, rootsh, types.OpStart, t+90*second, 0)

	// --- a4: lateral movement to the developer box, with persistence.
	t += 15 * minute
	ssh := b.ProcInstance(AgentWebServer, ExeSSH)
	b.Emit(AgentWebServer, rootsh, ssh, types.OpStart, t, 0)
	sshd := b.Proc(AgentDevBox, ExeSSHD)
	b.CrossHostConnect(AgentWebServer, ssh, AgentDevBox, sshd, 22, t+30*second)
	devsh := b.ProcInstance(AgentDevBox, ExeBash)
	b.Emit(AgentDevBox, sshd, devsh, types.OpStart, t+1*minute, 0)
	keys := b.File(AgentDevBox, FileAuthKeys)
	b.Emit(AgentDevBox, devsh, keys, types.OpWrite, t+2*minute, 1024)

	// --- a5: exfiltration of the source tree.
	t += 10 * minute
	tar := b.ProcInstance(AgentDevBox, ExeTar)
	b.Emit(AgentDevBox, devsh, tar, types.OpStart, t, 0)
	for i, f := range []string{"/home/dev/project/main.go", "/home/dev/project/db.go", "/home/dev/project/api.go"} {
		fe := b.File(AgentDevBox, f)
		b.Emit(AgentDevBox, tar, fe, types.OpRead, t+int64(i+1)*10*second, 131072)
	}
	tgz := b.File(AgentDevBox, FileSrcTgz)
	b.Emit(AgentDevBox, tar, tgz, types.OpWrite, t+1*minute, 9437184)
	curl := b.ProcInstance(AgentDevBox, ExeCurl)
	b.Emit(AgentDevBox, devsh, curl, types.OpStart, t+2*minute, 0)
	b.Emit(AgentDevBox, curl, tgz, types.OpRead, t+2*minute+20*second, 9437184)
	out := b.Conn(AgentDevBox, AttackerIP2, 443)
	b.Emit(AgentDevBox, curl, out, types.OpWrite, t+3*minute, 9437184)
}

// InjectDeps plants the dependency-tracking behaviours d1–d3 on day 2.
func InjectDeps(b *Builder, cfg Config) {
	t := DayStart(BehaviorDay) + 8*60*minute // 08:00

	// --- d1: Chrome update chain (backward-tracking target).
	for _, agent := range []int{AgentWinClient, AgentMailSrv} {
		if agent > cfg.Hosts {
			continue
		}
		gu := b.Proc(agent, ExeGoogleUpdate)
		cdn := b.Conn(agent, UpdateCDNIP, 443)
		b.Emit(agent, gu, cdn, types.OpRead, t, 52428800)
		upd := b.File(agent, FileChromeUpd)
		b.Emit(agent, gu, upd, types.OpWrite, t+1*minute, 52428800)
		chrome := b.ProcInstance(agent, `C:\Program Files\Google\Chrome\chrome.exe`)
		b.Emit(agent, gu, chrome, types.OpStart, t+2*minute, 0)
		t += 3 * minute
	}

	// --- d2: Java update chain.
	ju := b.Proc(AgentWinClient, ExeJucheck)
	cdn := b.Conn(AgentWinClient, UpdateCDNIP, 443)
	b.Emit(AgentWinClient, ju, cdn, types.OpRead, t, 73400320)
	upd := b.File(AgentWinClient, FileJavaUpd)
	b.Emit(AgentWinClient, ju, upd, types.OpWrite, t+1*minute, 73400320)
	javaw := b.ProcInstance(AgentWinClient, `C:\Program Files\Java\javaw.exe`)
	b.Emit(AgentWinClient, ju, javaw, types.OpStart, t+2*minute, 0)

	// --- d3: info_stealer ramification (paper Query 3): cp writes the
	// script into the web root on the web server, apache reads and serves
	// it, wget on the developer box downloads and writes it locally.
	t += 30 * minute
	cp := b.ProcInstance(AgentWebServer, ExeCp)
	stealer := b.File(AgentWebServer, FileStealerSrv)
	b.Emit(AgentWebServer, cp, stealer, types.OpWrite, t, 16384)
	apache := b.Proc(AgentWebServer, ExeApache)
	b.Emit(AgentWebServer, apache, stealer, types.OpRead, t+2*minute, 16384)
	wget := b.ProcInstance(AgentDevBox, ExeWget)
	b.CrossHostConnect(AgentWebServer, apache, AgentDevBox, wget, 80, t+3*minute)
	local := b.File(AgentDevBox, FileStealerDst)
	b.Emit(AgentDevBox, wget, local, types.OpWrite, t+4*minute, 16384)
}

// InjectMalware executes the Table 4 samples (v1–v5) on workstations on
// day 2, each with its category's characteristic behaviour.
func InjectMalware(b *Builder, cfg Config) {
	t := DayStart(BehaviorDay) + 11*60*minute // 11:00
	_ = cfg
	for i, s := range MalwareSamples {
		agent := MalwareAgent(i)
		tt := t + int64(i)*10*minute
		exePath := MalwareExe(s)
		dropped := b.File(agent, exePath)
		browser := b.Proc(agent, `C:\Program Files\Google\Chrome\chrome.exe`)
		b.Emit(agent, browser, dropped, types.OpWrite, tt, 204800)
		explorer := b.Proc(agent, `C:\Windows\explorer.exe`)
		proc := b.ProcInstance(agent, exePath)
		b.Emit(agent, explorer, proc, types.OpStart, tt+1*minute, 0)
		c2 := b.Conn(agent, MalwareC2IP, 6667)
		switch s.Category {
		case "Trojan.Sysbot", "Virus.Sysbot":
			// Bot: C2 channel, command polling, payload drop, re-spawn.
			b.Emit(agent, proc, c2, types.OpConnect, tt+2*minute, 0)
			for k := int64(0); k < 20; k++ {
				b.Emit(agent, proc, c2, types.OpRead, tt+3*minute+k*30*second, 512)
			}
			payload := b.File(agent, `C:\Windows\Temp\sysbot.dll`)
			b.Emit(agent, proc, payload, types.OpWrite, tt+4*minute, 65536)
			if s.Category == "Virus.Sysbot" {
				// Virus: infects an installed binary.
				host := b.File(agent, `C:\Program Files\7-Zip\7z.exe`)
				b.Emit(agent, proc, host, types.OpRead, tt+5*minute, 1048576)
				b.Emit(agent, proc, host, types.OpWrite, tt+5*minute+30*second, 1048576)
			}
			svchost := b.ProcInstance(agent, `C:\Windows\System32\svchost.exe`)
			b.Emit(agent, proc, svchost, types.OpStart, tt+6*minute, 0)
		case "Trojan.Hooker":
			// Keylogger: hook DLL, periodic keystroke log writes, exfil.
			hook := b.File(agent, `C:\Windows\Temp\hooker.dll`)
			b.Emit(agent, proc, hook, types.OpWrite, tt+2*minute, 32768)
			klog := b.File(agent, `C:\Users\alice\AppData\Roaming\keylog.txt`)
			for k := int64(0); k < 15; k++ {
				b.Emit(agent, proc, klog, types.OpWrite, tt+3*minute+k*minute, 1024)
			}
			b.Emit(agent, proc, c2, types.OpConnect, tt+18*minute, 0)
			b.Emit(agent, proc, c2, types.OpWrite, tt+19*minute, 15360)
		case "Virus.Autorun":
			// Autorun: drops autorun.inf plus a copy of itself on every
			// volume, patches the hosts file.
			for _, drive := range []string{`D:`, `E:`, `F:`} {
				inf := b.File(agent, drive+`\autorun.inf`)
				b.Emit(agent, proc, inf, types.OpWrite, tt+2*minute, 256)
				cp := b.File(agent, drive+`\setup.exe`)
				b.Emit(agent, proc, cp, types.OpWrite, tt+2*minute+30*second, 204800)
			}
			hosts := b.File(agent, `C:\Windows\System32\drivers\etc\hosts`)
			b.Emit(agent, proc, hosts, types.OpWrite, tt+4*minute, 1024)
		}
	}
}

// InjectAbnormal plants the six abnormal system behaviours s1–s6 on day 2.
func InjectAbnormal(b *Builder, cfg Config) {
	day := DayStart(BehaviorDay)

	// --- s1: command history probing (paper Query 2's behaviour).
	t := day + 16*60*minute
	bash := b.Proc(AgentDevBox, ExeBash)
	probe := b.ProcInstance(AgentDevBox, ExeProbe)
	b.Emit(AgentDevBox, bash, probe, types.OpStart, t, 0)
	vim := b.File(AgentDevBox, FileViminfo)
	hist := b.File(AgentDevBox, FileBashHist)
	b.Emit(AgentDevBox, probe, vim, types.OpRead, t+30*second, 8192)
	b.Emit(AgentDevBox, probe, hist, types.OpRead, t+45*second, 16384)

	// --- s2: suspicious web service: apache spawning a reverse shell.
	t = day + 17*60*minute
	apache := b.Proc(AgentWebServer, ExeApache)
	nc := b.ProcInstance(AgentWebServer, ExeNetcat)
	b.Emit(AgentWebServer, apache, nc, types.OpStart, t, 0)
	rev := b.Conn(AgentWebServer, AttackerIP2, 9001)
	b.Emit(AgentWebServer, nc, rev, types.OpConnect, t+10*second, 0)

	// --- s3: frequent network access: a beacon polling its C2 all day.
	beacon := b.ProcInstance(AgentWinClient, ExeBeacon)
	c2 := b.Conn(AgentWinClient, BeaconIP, 443)
	for k := int64(0); k < 200; k++ {
		b.Emit(AgentWinClient, beacon, c2, types.OpRead, day+9*60*minute+k*90*second, 256)
	}

	// --- s4: erasing traces from system files.
	t = day + 18*60*minute
	wiper := b.ProcInstance(AgentWebServer, ExeBash)
	b.Emit(AgentWebServer, b.Proc(AgentWebServer, ExeSSHD), wiper, types.OpStart, t-minute, 0)
	for i, f := range []string{"/var/log/auth.log", "/var/log/syslog", "/var/log/apache2/access.log"} {
		fe := b.File(AgentWebServer, f)
		b.Emit(AgentWebServer, wiper, fe, types.OpWrite, t+int64(i)*10*second, 0)
		b.Emit(AgentWebServer, wiper, fe, types.OpDelete, t+int64(i)*10*second+5*second, 0)
	}

	// --- s5: network access spike: a backup agent's steady trickle, then
	// a burst (sliding-window anomaly target).
	bk := b.ProcInstance(AgentMailSrv, ExeBackup)
	dst := b.Conn(AgentMailSrv, BackupSrvIP, 8443)
	base := day + 13*60*minute
	for k := int64(0); k < 150; k++ {
		b.Emit(AgentMailSrv, bk, dst, types.OpWrite, base+k*12*second, 4096+b.rng.Int63n(2048))
	}
	spike := base + 150*12*second
	for k := int64(0); k < 15; k++ {
		b.Emit(AgentMailSrv, bk, dst, types.OpWrite, spike+k*10*second, 64*1024*1024)
	}

	// --- s6: abnormal file access: a dropper enumerating the user's
	// documents far faster than any interactive program.
	t = day + 15*60*minute
	idx := b.ProcInstance(AgentWinClient, ExeIndexer)
	for k := 0; k < 40; k++ {
		doc := b.File(AgentWinClient, fmt.Sprintf(`C:\Users\alice\Documents\doc%03d.docx`, k))
		b.Emit(AgentWinClient, idx, doc, types.OpRead, t+int64(k)*3*second, 262144)
	}
}

// Scenario builds the full evaluation dataset: background noise plus every
// injected behaviour.
func Scenario(cfg Config) *types.Dataset {
	if cfg.Days < 3 {
		panic("gen: Scenario requires at least 3 days (background, APT day, behaviour day)")
	}
	if cfg.Hosts < 10 {
		panic("gen: Scenario requires at least 10 hosts (roles 1-5 plus malware workstations 6-10)")
	}
	b := NewBuilder(cfg.Seed)
	b.Background(cfg)
	InjectAPT1(b, cfg)
	InjectAPT2(b, cfg)
	InjectDeps(b, cfg)
	InjectMalware(b, cfg)
	InjectAbnormal(b, cfg)
	return b.Dataset()
}
