package gen

import (
	"testing"

	"aiql/internal/timeutil"
	"aiql/internal/types"
)

func TestDeterminism(t *testing.T) {
	cfg := Config{Hosts: 10, Days: 3, BackgroundPerHostDay: 300, Seed: 123}
	a := Scenario(cfg)
	b := Scenario(cfg)
	if len(a.Events) != len(b.Events) || len(a.Entities) != len(b.Entities) {
		t.Fatalf("sizes differ: %d/%d vs %d/%d",
			len(a.Events), len(a.Entities), len(b.Events), len(b.Entities))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs between identical seeds", i)
		}
	}
	// A different seed must produce different background noise.
	cfg.Seed = 124
	c := Scenario(cfg)
	same := 0
	limit := len(a.Events)
	if len(c.Events) < limit {
		limit = len(c.Events)
	}
	for i := 0; i < limit; i++ {
		if a.Events[i] == c.Events[i] {
			same++
		}
	}
	if same == limit {
		t.Error("different seeds produced identical traces")
	}
}

func TestScenarioGuards(t *testing.T) {
	assertPanics(t, "too few days", func() {
		Scenario(Config{Hosts: 10, Days: 2, BackgroundPerHostDay: 1, Seed: 1})
	})
	assertPanics(t, "too few hosts", func() {
		Scenario(Config{Hosts: 5, Days: 3, BackgroundPerHostDay: 1, Seed: 1})
	})
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}

func TestBackgroundScale(t *testing.T) {
	cfg := Config{Hosts: 10, Days: 3, BackgroundPerHostDay: 200, Seed: 1}
	b := NewBuilder(cfg.Seed)
	b.Background(cfg)
	ds := b.Dataset()
	want := cfg.Hosts * cfg.Days * cfg.BackgroundPerHostDay
	// Background emits exactly the configured count plus the low-rate
	// state-file accesses (< 0.5%).
	if len(ds.Events) < want || len(ds.Events) > want+want/100 {
		t.Errorf("background events = %d, want ~%d", len(ds.Events), want)
	}
	st := ds.Stats()
	if st.Agents != cfg.Hosts {
		t.Errorf("agents = %d, want %d", st.Agents, cfg.Hosts)
	}
	// Events stay within the configured day range.
	if timeutil.DayIndex(st.FirstTime) < timeutil.DayIndex(DayStart(0)) ||
		timeutil.DayIndex(st.LastTime) > timeutil.DayIndex(DayStart(cfg.Days-1)) {
		t.Error("background events outside the configured days")
	}
}

func TestEntityCaching(t *testing.T) {
	b := NewBuilder(1)
	p1 := b.Proc(1, "/bin/sh")
	p2 := b.Proc(1, "/bin/sh")
	if p1 != p2 {
		t.Error("Proc must cache by (agent, exe)")
	}
	p3 := b.Proc(2, "/bin/sh")
	if p1 == p3 {
		t.Error("Proc must separate agents")
	}
	i1 := b.ProcInstance(1, "/bin/sh")
	i2 := b.ProcInstance(1, "/bin/sh")
	if i1 == i2 || i1 == p1 {
		t.Error("ProcInstance must mint fresh entities")
	}
	f1, f2 := b.File(1, "/x"), b.File(1, "/x")
	if f1 != f2 {
		t.Error("File must cache by (agent, path)")
	}
	c1 := b.Conn(1, "10.0.0.1", 443)
	c2 := b.Conn(1, "10.0.0.1", 443)
	c3 := b.Conn(1, "10.0.0.1", 80)
	if c1 != c2 || c1 == c3 {
		t.Error("Conn caching by (agent, ip, port) broken")
	}
}

func TestSequenceNumbersPerAgentMonotone(t *testing.T) {
	cfg := SmallConfig()
	ds := Scenario(cfg)
	last := map[int]uint64{}
	// Events are time sorted; per-agent Seq must be unique (strictly
	// increasing in emission order, which may differ from time order, so
	// only uniqueness is checked here).
	seen := map[int]map[uint64]bool{}
	for i := range ds.Events {
		ev := &ds.Events[i]
		if seen[ev.AgentID] == nil {
			seen[ev.AgentID] = map[uint64]bool{}
		}
		if seen[ev.AgentID][ev.Seq] {
			t.Fatalf("duplicate seq %d on agent %d", ev.Seq, ev.AgentID)
		}
		seen[ev.AgentID][ev.Seq] = true
		if ev.Seq > last[ev.AgentID] {
			last[ev.AgentID] = ev.Seq
		}
	}
}

func TestEventsReferenceKnownEntities(t *testing.T) {
	ds := Scenario(SmallConfig())
	for i := range ds.Events {
		ev := &ds.Events[i]
		subj := ds.Entity(ev.Subject)
		obj := ds.Entity(ev.Object)
		if subj == nil || obj == nil {
			t.Fatalf("event %d references unknown entities", ev.ID)
		}
		if subj.Type != types.EntityProcess {
			t.Fatalf("event %d subject is a %v, not a process", ev.ID, subj.Type)
		}
	}
}

func TestInjectedArtifactsPresent(t *testing.T) {
	ds := Scenario(SmallConfig())
	wantFiles := []string{FileDump, FileInvoice, FileDropper, FileWebshell,
		FileChromeUpd, FileStealerSrv, FileStealerDst, FileViminfo}
	wantProcs := []string{ExeSbblv, ExeMal, ExeGsecdump, ExeOsql, ExeProbe,
		ExeBeacon, ExeIndexer, ExeBackup}
	names := map[string]bool{}
	exes := map[string]bool{}
	for i := range ds.Entities {
		e := &ds.Entities[i]
		if v, ok := e.Attrs[types.AttrName]; ok {
			names[v] = true
		}
		if v, ok := e.Attrs[types.AttrExeName]; ok {
			exes[v] = true
		}
	}
	for _, f := range wantFiles {
		if !names[f] {
			t.Errorf("artifact file %q missing from scenario", f)
		}
	}
	for _, p := range wantProcs {
		if !exes[p] {
			t.Errorf("artifact process %q missing from scenario", p)
		}
	}
	// All five malware droppers too.
	for _, s := range MalwareSamples {
		if !exes[MalwareExe(s)] {
			t.Errorf("malware %s executable missing", s.ID)
		}
	}
}

func TestAttackTimingOnDeclaredDays(t *testing.T) {
	ds := Scenario(SmallConfig())
	apt1 := timeutil.DayIndex(DayStart(APT1Day))
	// The exfiltration burst (writes > 32 MiB to the attacker) must be on
	// the APT day.
	var found bool
	for i := range ds.Events {
		ev := &ds.Events[i]
		if ev.Amount > 32<<20 && ev.Op == types.OpWrite {
			obj := ds.Entity(ev.Object)
			if obj.Type == types.EntityNetwork && obj.Attrs[types.AttrDstIP] == AttackerIP {
				found = true
				if timeutil.DayIndex(ev.Start) != apt1 {
					t.Fatalf("exfil burst on day %d, want %d", timeutil.DayIndex(ev.Start), apt1)
				}
			}
		}
	}
	if !found {
		t.Error("no exfiltration burst found")
	}
}

func TestCrossHostConnectShape(t *testing.T) {
	b := NewBuilder(1)
	pa := b.Proc(1, "/bin/a")
	pb := b.Proc(2, "/bin/b")
	b.CrossHostConnect(1, pa, 2, pb, 22, DayStart(0)+1000)
	ds := b.Dataset()
	var procToProc, connects, accepts int
	for i := range ds.Events {
		ev := &ds.Events[i]
		obj := ds.Entity(ev.Object)
		switch {
		case ev.Op == types.OpConnect && obj.Type == types.EntityProcess:
			procToProc++
			if ev.AgentID != 1 {
				t.Error("cross-host edge must be attributed to the initiator")
			}
		case ev.Op == types.OpConnect:
			connects++
		case ev.Op == types.OpAccept:
			accepts++
		}
	}
	if procToProc != 1 || connects != 1 || accepts != 1 {
		t.Errorf("cross-host connect emitted %d/%d/%d events", procToProc, connects, accepts)
	}
}

func TestDateHelpers(t *testing.T) {
	if DateStr(0) != "03/01/2017" || DateStr(1) != "03/02/2017" {
		t.Errorf("DateStr = %q, %q", DateStr(0), DateStr(1))
	}
	if DayStart(1)-DayStart(0) != timeutil.DayMillis {
		t.Error("DayStart not day-aligned")
	}
}

func TestSignatures(t *testing.T) {
	b := NewBuilder(1)
	signed := b.Proc(1, ExeSqlservr)
	unsigned := b.Proc(1, ExeSbblv)
	ds := b.Dataset()
	if ds.Entity(signed).Attrs[types.AttrSignature] != "verified" {
		t.Error("sqlservr should carry a verified signature")
	}
	if ds.Entity(unsigned).Attrs[types.AttrSignature] != "unsigned" {
		t.Error("dropped malware should be unsigned")
	}
}
