// Package gen synthesizes system monitoring datasets: deterministic
// enterprise background activity plus the injected attack behaviours the
// paper's evaluation queries investigate (the APT case study c1–c5, the
// second APT a1–a5, dependency-tracking chains d1–d3, real-world malware
// v1–v5, and abnormal system behaviours s1–s6).
//
// The generator replaces the paper's 150-host auditd/ETW deployment. Every
// evaluation query targets a concrete behavioural signature; the injectors
// plant exactly those signatures inside seeded random background noise so
// that each published query returns non-trivial results with realistic
// selectivity.
package gen

import (
	"fmt"
	"math/rand"
	"time"

	"aiql/internal/timeutil"
	"aiql/internal/types"
)

// Day0 is the first day of every generated dataset (UTC).
var Day0 = time.Date(2017, 3, 1, 0, 0, 0, 0, time.UTC)

// DayStart returns the unix-millisecond timestamp of the start of dataset
// day i.
func DayStart(i int) int64 { return Day0.AddDate(0, 0, i).UnixMilli() }

// DateStr renders dataset day i in the US format AIQL queries use.
func DateStr(i int) string { return Day0.AddDate(0, 0, i).Format("01/02/2006") }

// Config controls dataset scale. The zero value is unusable; use
// DefaultConfig or fill every field.
type Config struct {
	// Hosts is the number of agents (hosts), numbered 1..Hosts.
	Hosts int
	// Days is the number of simulated days starting at Day0.
	Days int
	// BackgroundPerHostDay is the number of background events generated
	// per host per day.
	BackgroundPerHostDay int
	// Seed makes generation deterministic.
	Seed int64
}

// DefaultConfig is a laptop-scale stand-in for the paper's deployment:
// big enough that unselective scans visibly dominate query time, small
// enough to regenerate in seconds.
func DefaultConfig() Config {
	return Config{Hosts: 15, Days: 4, BackgroundPerHostDay: 20000, Seed: 1}
}

// SmallConfig is used by unit and integration tests.
func SmallConfig() Config {
	return Config{Hosts: 10, Days: 3, BackgroundPerHostDay: 1500, Seed: 1}
}

// Well-known agent roles in every generated enterprise. Hosts beyond these
// are employee workstations.
const (
	AgentWinClient = 1 // Windows client (APT victim)
	AgentDBServer  = 2 // SQL database server
	AgentWebServer = 3 // Linux web server (apache)
	AgentDevBox    = 4 // Linux developer box
	AgentMailSrv   = 5 // mail server
)

// Network endpoints used by the injected attacks (TEST-NET addresses).
const (
	AttackerIP  = "203.0.113.129" // the paper's obfuscated "XXX.129"
	AttackerIP2 = "203.0.113.77"  // second APT's C2 endpoint
	UpdateCDNIP = "198.51.100.10" // software update CDN
)

// Builder accumulates entities and events with deterministic IDs and
// per-agent sequence numbers.
type Builder struct {
	rng        *rand.Rand
	entities   []types.Entity
	events     []types.Event
	nextEntity types.EntityID
	nextEvent  types.EventID
	seq        map[int]uint64
	cache      map[string]types.EntityID
}

// NewBuilder creates an empty builder with the given deterministic seed.
func NewBuilder(seed int64) *Builder {
	return &Builder{
		rng:   rand.New(rand.NewSource(seed)),
		seq:   make(map[int]uint64),
		cache: make(map[string]types.EntityID),
	}
}

// Dataset finalizes the builder into an immutable dataset.
func (b *Builder) Dataset() *types.Dataset {
	return types.NewDataset(b.entities, b.events)
}

// Rand exposes the builder's deterministic random source to injectors.
func (b *Builder) Rand() *rand.Rand { return b.rng }

func (b *Builder) newEntity(t types.EntityType, agent int, attrs map[string]string) types.EntityID {
	b.nextEntity++
	b.entities = append(b.entities, types.Entity{
		ID:      b.nextEntity,
		Type:    t,
		AgentID: agent,
		Attrs:   attrs,
	})
	return b.nextEntity
}

// Proc returns the process entity for (agent, exe), creating it on first
// use. Processes are keyed by executable path; distinct instances of the
// same program (e.g. per attack stage) can be forced with ProcInstance.
func (b *Builder) Proc(agent int, exe string) types.EntityID {
	key := fmt.Sprintf("p|%d|%s", agent, exe)
	if id, ok := b.cache[key]; ok {
		return id
	}
	id := b.newEntity(types.EntityProcess, agent, map[string]string{
		types.AttrExeName:   exe,
		types.AttrPID:       fmt.Sprint(1000 + b.rng.Intn(60000)),
		types.AttrUser:      pickUser(b.rng, agent),
		types.AttrCmd:       exe,
		types.AttrSignature: signatureFor(exe),
	})
	b.cache[key] = id
	return id
}

// ProcInstance creates a fresh process entity for exe regardless of cache
// state (a new PID), used when an attack needs a distinguishable instance.
func (b *Builder) ProcInstance(agent int, exe string) types.EntityID {
	return b.newEntity(types.EntityProcess, agent, map[string]string{
		types.AttrExeName:   exe,
		types.AttrPID:       fmt.Sprint(1000 + b.rng.Intn(60000)),
		types.AttrUser:      pickUser(b.rng, agent),
		types.AttrCmd:       exe,
		types.AttrSignature: signatureFor(exe),
	})
}

// File returns the file entity for (agent, path), creating it on first use.
func (b *Builder) File(agent int, path string) types.EntityID {
	key := fmt.Sprintf("f|%d|%s", agent, path)
	if id, ok := b.cache[key]; ok {
		return id
	}
	id := b.newEntity(types.EntityFile, agent, map[string]string{
		types.AttrName:   path,
		types.AttrOwner:  pickUser(b.rng, agent),
		types.AttrVolID:  "vol0",
		types.AttrDataID: fmt.Sprintf("d%08d", b.nextEntity),
	})
	b.cache[key] = id
	return id
}

// Conn returns the network-connection entity for (agent, dstIP, dstPort).
func (b *Builder) Conn(agent int, dstIP string, dstPort int) types.EntityID {
	key := fmt.Sprintf("n|%d|%s|%d", agent, dstIP, dstPort)
	if id, ok := b.cache[key]; ok {
		return id
	}
	id := b.newEntity(types.EntityNetwork, agent, map[string]string{
		types.AttrSrcIP:    fmt.Sprintf("10.10.0.%d", agent),
		types.AttrDstIP:    dstIP,
		types.AttrSrcPort:  fmt.Sprint(20000 + b.rng.Intn(40000)),
		types.AttrDstPort:  fmt.Sprint(dstPort),
		types.AttrProtocol: "tcp",
	})
	b.cache[key] = id
	return id
}

// Emit appends one event. t is unix milliseconds; amount is the transfer
// size for read/write/send/recv events (0 where meaningless).
func (b *Builder) Emit(agent int, subj, obj types.EntityID, op types.Op, t int64, amount int64) types.EventID {
	b.nextEvent++
	b.seq[agent]++
	b.events = append(b.events, types.Event{
		ID:      b.nextEvent,
		AgentID: agent,
		Subject: subj,
		Object:  obj,
		Op:      op,
		Start:   t,
		End:     t + int64(b.rng.Intn(40)),
		Seq:     b.seq[agent],
		Amount:  amount,
	})
	return b.nextEvent
}

// Background generates cfg.BackgroundPerHostDay noise events per host per
// day: process starts, file reads/writes, and network traffic drawn from
// per-role name pools.
func (b *Builder) Background(cfg Config) {
	for day := 0; day < cfg.Days; day++ {
		dayStart := DayStart(day)
		for agent := 1; agent <= cfg.Hosts; agent++ {
			procs := procPoolFor(agent)
			files := filePoolFor(agent)
			for i := 0; i < cfg.BackgroundPerHostDay; i++ {
				t := dayStart + b.rng.Int63n(timeutil.DayMillis)
				subj := b.Proc(agent, procs[b.rng.Intn(len(procs))])
				switch r := b.rng.Float64(); {
				case r < 0.40: // file read
					obj := b.File(agent, files[b.rng.Intn(len(files))])
					b.Emit(agent, subj, obj, types.OpRead, t, int64(64+b.rng.Intn(65536)))
				case r < 0.65: // file write
					obj := b.File(agent, files[b.rng.Intn(len(files))])
					b.Emit(agent, subj, obj, types.OpWrite, t, int64(64+b.rng.Intn(65536)))
				case r < 0.75: // process start
					child := b.Proc(agent, procs[b.rng.Intn(len(procs))])
					b.Emit(agent, subj, child, types.OpStart, t, 0)
				case r < 0.87: // network send
					obj := b.Conn(agent, randomInternalIP(b.rng, cfg.Hosts), 443)
					b.Emit(agent, subj, obj, types.OpWrite, t, int64(128+b.rng.Intn(32768)))
				case r < 0.95: // network recv
					obj := b.Conn(agent, randomInternalIP(b.rng, cfg.Hosts), 443)
					b.Emit(agent, subj, obj, types.OpRead, t, int64(128+b.rng.Intn(32768)))
				case r < 0.98: // connect
					obj := b.Conn(agent, randomInternalIP(b.rng, cfg.Hosts), 80+b.rng.Intn(8000))
					b.Emit(agent, subj, obj, types.OpConnect, t, 0)
				default: // execute
					obj := b.File(agent, files[b.rng.Intn(len(files))])
					b.Emit(agent, subj, obj, types.OpExecute, t, 0)
				}
				// Low-rate realistic accesses to shell/editor state files on
				// Linux hosts: only the owning programs touch them, so
				// history-probing queries stay selective, as in real audit
				// data.
				if (agent == AgentWebServer || agent == AgentDevBox) && b.rng.Float64() < 0.002 {
					vim := b.Proc(agent, "/usr/bin/vim")
					vi := b.File(agent, "/home/dev/.viminfo")
					hist := b.File(agent, "/home/dev/.bash_history")
					if b.rng.Float64() < 0.5 {
						b.Emit(agent, vim, vi, types.OpWrite, t+1, 4096)
					} else {
						bash := b.Proc(agent, "/bin/bash")
						b.Emit(agent, bash, hist, types.OpWrite, t+1, 2048)
					}
				}
			}
		}
	}
}

// CrossHostConnect records a cross-host dependency: proc on agentA connects
// to proc on agentB. Besides the two host-local network events, it emits a
// direct proc→proc connect edge, the representation dependency queries use
// to chain constraints across hosts (paper Sec. 4.2, Query 3's
// "->[connect]" step).
func (b *Builder) CrossHostConnect(agentA int, procA types.EntityID, agentB int, procB types.EntityID, port int, t int64) {
	connA := b.Conn(agentA, fmt.Sprintf("10.10.0.%d", agentB), port)
	b.Emit(agentA, procA, connA, types.OpConnect, t, 0)
	connB := b.Conn(agentB, fmt.Sprintf("10.10.0.%d", agentA), port)
	b.Emit(agentB, procB, connB, types.OpAccept, t+5, 0)
	// Direct cross-host edge (attributed to the initiating agent).
	b.Emit(agentA, procA, procB, types.OpConnect, t+1, 0)
}

func randomInternalIP(rng *rand.Rand, hosts int) string {
	return fmt.Sprintf("10.10.0.%d", 1+rng.Intn(hosts))
}

func pickUser(rng *rand.Rand, agent int) string {
	switch agent {
	case AgentDBServer, AgentWebServer, AgentMailSrv:
		return "root"
	default:
		return fmt.Sprintf("user%d", agent)
	}
}

func signatureFor(exe string) string {
	// Signed Microsoft/vendor binaries vs unsigned everything else.
	for _, s := range signedBinaries {
		if s == exe {
			return "verified"
		}
	}
	return "unsigned"
}
