package gen

// Name pools for background activity, split by host role. Windows hosts run
// the usual desktop stack; Linux servers run daemons and shell tools.

var winProcs = []string{
	`C:\Windows\System32\svchost.exe`,
	`C:\Windows\explorer.exe`,
	`C:\Program Files\Google\Chrome\chrome.exe`,
	`C:\Program Files\Mozilla Firefox\firefox.exe`,
	`C:\Program Files\Microsoft Office\outlook.exe`,
	`C:\Program Files\Microsoft Office\winword.exe`,
	`C:\Program Files\Microsoft Office\excel.exe`,
	`C:\Windows\System32\cmd.exe`,
	`C:\Windows\System32\notepad.exe`,
	`C:\Windows\System32\lsass.exe`,
	`C:\Windows\System32\wininit.exe`,
	`C:\Program Files\7-Zip\7z.exe`,
	`C:\Program Files\Java\javaw.exe`,
}

var winFiles = []string{
	`C:\Windows\System32\kernel32.dll`,
	`C:\Windows\System32\ntdll.dll`,
	`C:\Windows\System32\user32.dll`,
	`C:\Users\alice\Documents\report.docx`,
	`C:\Users\alice\Documents\budget.xlsx`,
	`C:\Users\alice\Downloads\setup.exe`,
	`C:\Users\alice\AppData\Local\Temp\tmp0001.tmp`,
	`C:\Windows\Temp\MpCmdRun.log`,
	`C:\ProgramData\config.ini`,
	`C:\Users\alice\NTUSER.DAT`,
}

var dbProcs = []string{
	`C:\Program Files\Microsoft SQL Server\sqlservr.exe`,
	`C:\Windows\System32\svchost.exe`,
	`C:\Windows\System32\cmd.exe`,
	`C:\Windows\System32\lsass.exe`,
	`C:\Program Files\Microsoft SQL Server\sqlagent.exe`,
}

var dbFiles = []string{
	`C:\SQLData\master.mdf`,
	`C:\SQLData\userdb.mdf`,
	`C:\SQLData\userdb_log.ldf`,
	`C:\SQLData\tempdb.mdf`,
	`C:\Windows\System32\sqlncli.dll`,
	`C:\SQLBackup\nightly.bak`,
}

var linuxProcs = []string{
	"/usr/sbin/apache2",
	"/usr/sbin/sshd",
	"/bin/bash",
	"/usr/bin/vim",
	"/bin/cp",
	"/usr/bin/wget",
	"/usr/bin/curl",
	"/usr/bin/python",
	"/usr/sbin/cron",
	"/usr/bin/git",
	"/usr/sbin/rsyslogd",
}

var linuxFiles = []string{
	"/var/www/html/index.html",
	"/var/www/html/app.php",
	"/var/log/apache2/access.log",
	"/var/log/syslog",
	"/var/log/auth.log",
	"/etc/passwd",
	"/etc/hosts",
	"/home/dev/project/main.go",
	"/home/dev/project/db.go",
	"/tmp/build.out",
	"/usr/lib/libc.so.6",
}

var mailProcs = []string{
	"/usr/sbin/postfix",
	"/usr/sbin/dovecot",
	"/usr/sbin/sshd",
	"/bin/bash",
	"/usr/sbin/rsyslogd",
}

var mailFiles = []string{
	"/var/mail/alice",
	"/var/mail/bob",
	"/var/log/mail.log",
	"/etc/postfix/main.cf",
	"/var/spool/postfix/incoming/1.eml",
}

// signedBinaries carry a "verified" binary signature attribute; queries use
// this to separate vendor software from dropped malware.
var signedBinaries = []string{
	`C:\Windows\System32\svchost.exe`,
	`C:\Windows\explorer.exe`,
	`C:\Program Files\Google\Chrome\chrome.exe`,
	`C:\Program Files\Mozilla Firefox\firefox.exe`,
	`C:\Program Files\Microsoft Office\outlook.exe`,
	`C:\Program Files\Microsoft Office\winword.exe`,
	`C:\Program Files\Microsoft Office\excel.exe`,
	`C:\Windows\System32\cmd.exe`,
	`C:\Windows\System32\notepad.exe`,
	`C:\Windows\System32\lsass.exe`,
	`C:\Windows\System32\wininit.exe`,
	`C:\Program Files\Microsoft SQL Server\sqlservr.exe`,
	`C:\Program Files\Microsoft SQL Server\sqlagent.exe`,
	`C:\Windows\System32\osql.exe`,
	`C:\Program Files\Google\Update\GoogleUpdate.exe`,
	`C:\Program Files\Java\jucheck.exe`,
}

// procPoolFor returns the background process pool for a host role.
func procPoolFor(agent int) []string {
	switch agent {
	case AgentDBServer:
		return dbProcs
	case AgentWebServer, AgentDevBox:
		return linuxProcs
	case AgentMailSrv:
		return mailProcs
	default:
		return winProcs
	}
}

// filePoolFor returns the background file pool for a host role.
func filePoolFor(agent int) []string {
	switch agent {
	case AgentDBServer:
		return dbFiles
	case AgentWebServer, AgentDevBox:
		return linuxFiles
	case AgentMailSrv:
		return mailFiles
	default:
		return winFiles
	}
}
