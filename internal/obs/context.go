package obs

import "context"

type traceKey struct{}
type spanKey struct{}

// WithTrace returns a context carrying the trace. Instrumented layers below
// (engine, storage, cluster) recover it with FromContext.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, t)
}

// FromContext returns the context's trace, or nil. All Trace methods are
// nil-safe, so callers may use the result unconditionally.
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

// TraceID returns the context's trace ID, or "".
func TraceID(ctx context.Context) string {
	return FromContext(ctx).ID()
}

// WithSpan returns a context carrying the current span — the parent under
// which a lower layer should attach its own detail (a storage scan folding
// block counters into the engine's data-query span, a coordinator hanging
// worker legs off the merge span).
func WithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, s)
}

// SpanFromContext returns the context's current span, or nil.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}
