package obs

import (
	"sort"
	"sync"
	"time"
)

// SlowEntry is one completed query in the slow log.
type SlowEntry struct {
	TraceID string `json:"trace_id"`
	// Query is the normalized query source (truncated to a sane length at
	// insertion so a pathological query cannot bloat the log).
	Query string `json:"query"`
	// Start is when the query began, RFC3339 with millisecond precision.
	Start  string     `json:"start"`
	DurMs  float64    `json:"dur_ms"`
	Rows   int        `json:"rows"`
	Error  string     `json:"error,omitempty"`
	Cached bool       `json:"result_cached,omitempty"`
	Trace  *TraceJSON `json:"trace,omitempty"`
}

// SlowLog is a bounded in-memory log of the N slowest queries seen, with
// their span trees. Insertion is O(log n) against a min-heap on duration;
// a query faster than the current floor is rejected in O(1) once the log
// is full, so the steady-state cost on the query path is one mutex and a
// compare.
type SlowLog struct {
	mu      sync.Mutex
	cap     int
	entries []*SlowEntry // min-heap by DurMs: entries[0] is the fastest kept
	dropped uint64
}

// NewSlowLog creates a slow log keeping the n slowest queries (default 32
// when n <= 0).
func NewSlowLog(n int) *SlowLog {
	if n <= 0 {
		n = 32
	}
	return &SlowLog{cap: n}
}

// maxSlowQueryLen bounds the stored query text per entry.
const maxSlowQueryLen = 4096

// Record offers a completed query to the log. It is kept if the log has
// room or the query is slower than the current fastest kept entry.
func (l *SlowLog) Record(e *SlowEntry) {
	if l == nil || e == nil {
		return
	}
	if len(e.Query) > maxSlowQueryLen {
		e.Query = e.Query[:maxSlowQueryLen] + "…"
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.entries) < l.cap {
		l.entries = append(l.entries, e)
		l.up(len(l.entries) - 1)
		return
	}
	if e.DurMs <= l.entries[0].DurMs {
		l.dropped++
		return
	}
	l.dropped++
	l.entries[0] = e
	l.down(0)
}

// Snapshot returns the kept entries, slowest first.
func (l *SlowLog) Snapshot() []*SlowEntry {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	out := make([]*SlowEntry, len(l.entries))
	copy(out, l.entries)
	l.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].DurMs > out[j].DurMs })
	return out
}

// Len returns the number of kept entries.
func (l *SlowLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}

func (l *SlowLog) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if l.entries[p].DurMs <= l.entries[i].DurMs {
			return
		}
		l.entries[p], l.entries[i] = l.entries[i], l.entries[p]
		i = p
	}
}

func (l *SlowLog) down(i int) {
	n := len(l.entries)
	for {
		small := i
		if c := 2*i + 1; c < n && l.entries[c].DurMs < l.entries[small].DurMs {
			small = c
		}
		if c := 2*i + 2; c < n && l.entries[c].DurMs < l.entries[small].DurMs {
			small = c
		}
		if small == i {
			return
		}
		l.entries[i], l.entries[small] = l.entries[small], l.entries[i]
		i = small
	}
}

// FormatStart renders a query start time for SlowEntry.Start.
func FormatStart(t time.Time) string {
	return t.UTC().Format("2006-01-02T15:04:05.000Z")
}
