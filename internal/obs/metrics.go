package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds a process's metric families and renders them in the
// Prometheus text exposition format (version 0.0.4). It is hand-rolled on
// the standard library: counters and gauges are atomics, histograms are
// fixed cumulative buckets, and *Func variants read their value at scrape
// time — the "second, labeled export path" over the stats structs the
// subsystems already maintain (storage.ScanStats, DurabilityStats, cache
// and streaming counters).
//
// Metric names are validated at registration: snake_case, with the unit
// suffix conventions the obsreg analyzer also enforces statically —
// counters end in _total, histograms in _seconds or _bytes, gauges in
// _seconds, _bytes, _ratio or _count. Registering the same name twice
// panics: every series must have exactly one owner.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	names    []string // sorted registration names for stable exposition
}

// NewRegistry creates an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// family is one named metric with its series (one for unlabeled metrics,
// one per label-value tuple for vecs).
type family struct {
	name   string
	help   string
	typ    string // "counter", "gauge", "histogram"
	labels []string

	mu     sync.Mutex
	series map[string]collectable // key: rendered label part
	// fn, when set, emits the family's series at scrape time instead.
	fn func(emit func(labels []string, v float64))
}

type collectable interface {
	// write appends the series' sample lines; labelPart is the rendered
	// {k="v",...} fragment ("" when unlabeled).
	write(b *strings.Builder, name, labelPart string)
}

// register validates and installs a new family, panicking on a duplicate
// or malformed name — both are programming errors, not runtime conditions.
func (r *Registry) register(name, help, typ string, labels []string) *family {
	if !snakeCase(name) {
		panic(fmt.Sprintf("obs: metric name %q is not snake_case", name))
	}
	if !unitSuffixed(name, typ) {
		panic(fmt.Sprintf("obs: %s %q lacks its unit suffix (counters _total; histograms _seconds/_bytes; gauges _seconds/_bytes/_ratio/_count)", typ, name))
	}
	for _, l := range labels {
		if !snakeCase(l) {
			panic(fmt.Sprintf("obs: label name %q is not snake_case", l))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[name]; dup {
		panic(fmt.Sprintf("obs: metric %q registered twice", name))
	}
	f := &family{name: name, help: help, typ: typ, labels: labels, series: make(map[string]collectable)}
	r.families[name] = f
	r.names = append(r.names, name)
	sort.Strings(r.names)
	return f
}

func snakeCase(s string) bool {
	if s == "" || s[0] < 'a' || s[0] > 'z' {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < 'a' || c > 'z') && (c < '0' || c > '9') && c != '_' {
			return false
		}
	}
	return true
}

func unitSuffixed(name, typ string) bool {
	switch typ {
	case "counter":
		return strings.HasSuffix(name, "_total")
	case "histogram":
		return strings.HasSuffix(name, "_seconds") || strings.HasSuffix(name, "_bytes")
	default: // gauge
		return strings.HasSuffix(name, "_seconds") || strings.HasSuffix(name, "_bytes") ||
			strings.HasSuffix(name, "_ratio") || strings.HasSuffix(name, "_count")
	}
}

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Uint64 // float64 bits
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds v (must be non-negative; negative deltas are dropped to keep
// the series monotonic).
func (c *Counter) Add(v float64) {
	if c == nil || v < 0 {
		return
	}
	addFloat(&c.v, v)
}

// Value returns the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(c.v.Load()) }

func (c *Counter) write(b *strings.Builder, name, labelPart string) {
	sample(b, name, labelPart, c.Value())
}

// Gauge is a settable instantaneous value.
type Gauge struct {
	v atomic.Uint64 // float64 bits
}

// Set records the current value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.v.Store(math.Float64bits(v))
}

// Add adjusts the value by v (may be negative).
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	addFloat(&g.v, v)
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.v.Load()) }

func (g *Gauge) write(b *strings.Builder, name, labelPart string) {
	sample(b, name, labelPart, g.Value())
}

func addFloat(a *atomic.Uint64, v float64) {
	for {
		old := a.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if a.CompareAndSwap(old, next) {
			return
		}
	}
}

// DefBuckets are the default histogram buckets, tuned for request
// latencies in seconds: 0.5ms to 10s.
var DefBuckets = []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// Histogram counts observations into fixed cumulative buckets.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // one per bound; +Inf is implied by count
	sum    atomic.Uint64   // float64 bits
	count  atomic.Uint64
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i].Add(1)
			break
		}
	}
	addFloat(&h.sum, v)
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

func (h *Histogram) write(b *strings.Builder, name, labelPart string) {
	cum := uint64(0)
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		le := strconv.FormatFloat(bound, 'g', -1, 64)
		sample(b, name+"_bucket", mergeLabels(labelPart, `le="`+le+`"`), float64(cum))
	}
	total := h.count.Load()
	sample(b, name+"_bucket", mergeLabels(labelPart, `le="+Inf"`), float64(total))
	sample(b, name+"_sum", labelPart, math.Float64frombits(h.sum.Load()))
	sample(b, name+"_count", labelPart, float64(total))
}

// funcSeries reads its value at scrape time.
type funcSeries struct{ fn func() float64 }

func (s funcSeries) write(b *strings.Builder, name, labelPart string) {
	sample(b, name, labelPart, s.fn())
}

// Counter registers and returns an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, "counter", nil)
	c := &Counter{}
	f.series[""] = c
	return c
}

// CounterFunc registers a counter whose value is read at scrape time —
// the export path for counters another subsystem already maintains.
// fn must be monotonically non-decreasing.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	f := r.register(name, help, "counter", nil)
	f.series[""] = funcSeries{fn}
}

// Gauge registers and returns an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, "gauge", nil)
	g := &Gauge{}
	f.series[""] = g
	return g
}

// GaugeFunc registers a gauge whose value is read at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.register(name, help, "gauge", nil)
	f.series[""] = funcSeries{fn}
}

// Histogram registers a histogram with the given bucket upper bounds
// (DefBuckets when empty). Bounds must be strictly increasing.
func (r *Registry) Histogram(name, help string, buckets ...float64) *Histogram {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram %q buckets not strictly increasing", name))
		}
	}
	f := r.register(name, help, "histogram", nil)
	h := &Histogram{bounds: buckets, counts: make([]atomic.Uint64, len(buckets))}
	f.series[""] = h
	return h
}

// CounterVec is a counter family keyed by label values.
type CounterVec struct{ f *family }

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if len(labels) == 0 {
		panic(fmt.Sprintf("obs: CounterVec %q needs at least one label", name))
	}
	return &CounterVec{f: r.register(name, help, "counter", labels)}
}

// With returns the counter for the given label values (created on first
// use). The value count must match the registered label names.
func (v *CounterVec) With(values ...string) *Counter {
	c, _ := v.f.child(values, func() collectable { return &Counter{} })
	return c.(*Counter)
}

// GaugeVec is a gauge family keyed by label values.
type GaugeVec struct{ f *family }

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if len(labels) == 0 {
		panic(fmt.Sprintf("obs: GaugeVec %q needs at least one label", name))
	}
	return &GaugeVec{f: r.register(name, help, "gauge", labels)}
}

// With returns the gauge for the given label values (created on first use).
func (v *GaugeVec) With(values ...string) *Gauge {
	g, _ := v.f.child(values, func() collectable { return &Gauge{} })
	return g.(*Gauge)
}

// GaugeVecFunc registers a labeled gauge family whose series are produced
// at scrape time: fn calls emit once per series. Used for series whose
// label set is dynamic (per-shard replication watermarks).
func (r *Registry) GaugeVecFunc(name, help string, labels []string, fn func(emit func(values []string, v float64))) {
	if len(labels) == 0 {
		panic(fmt.Sprintf("obs: GaugeVecFunc %q needs at least one label", name))
	}
	f := r.register(name, help, "gauge", labels)
	f.fn = fn
}

func (f *family) child(values []string, make func() collectable) (collectable, string) {
	key := f.labelPart(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.series[key]; ok {
		return c, key
	}
	c := make()
	f.series[key] = c
	return c, key
}

// labelPart renders `k1="v1",k2="v2"` for the family's label names.
func (f *family) labelPart(values []string) string {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q got %d label values, want %d", f.name, len(values), len(f.labels)))
	}
	var b strings.Builder
	for i, l := range f.labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
	return r.Replace(v)
}

func mergeLabels(a, b string) string {
	if a == "" {
		return b
	}
	if b == "" {
		return a
	}
	return a + "," + b
}

func sample(b *strings.Builder, name, labelPart string, v float64) {
	b.WriteString(name)
	if labelPart != "" {
		b.WriteByte('{')
		b.WriteString(labelPart)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
	b.WriteByte('\n')
}

// WriteTo renders every family in the text exposition format, sorted by
// metric name for a stable scrape.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	r.mu.Lock()
	names := make([]string, len(r.names))
	copy(names, r.names)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	r.mu.Unlock()

	for _, f := range fams {
		b.WriteString("# HELP ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(escapeHelp(f.help))
		b.WriteByte('\n')
		b.WriteString("# TYPE ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(f.typ)
		b.WriteByte('\n')
		if f.fn != nil {
			f.fn(func(values []string, v float64) {
				sample(&b, f.name, f.labelPart(values), v)
			})
			continue
		}
		f.mu.Lock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		series := make([]collectable, len(keys))
		for i, k := range keys {
			series[i] = f.series[k]
		}
		f.mu.Unlock()
		for i, k := range keys {
			series[i].write(&b, f.name, k)
		}
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

func escapeHelp(h string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(h)
}

// ServeHTTP serves the registry as a Prometheus scrape target.
func (r *Registry) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = r.WriteTo(w)
}
