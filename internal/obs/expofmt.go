package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// This file is the read side of the exposition format: a strict parser for
// the Prometheus text format the registry writes. It exists so tests (and
// the CI soak/failover scrapes) can validate a /metrics payload — every
// series well-formed, typed, and unique — without importing a Prometheus
// client library.

// Sample is one parsed series sample.
type Sample struct {
	// Name is the sample's metric name as exposed (histograms expose
	// name_bucket/name_sum/name_count under their family).
	Name string
	// Labels are the sample's label pairs, sorted by key.
	Labels map[string]string
	Value  float64
}

// Key renders the sample's identity: name plus sorted labels.
func (s *Sample) Key() string {
	if len(s.Labels) == 0 {
		return s.Name
	}
	keys := make([]string, 0, len(s.Labels))
	for k := range s.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(s.Name)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, s.Labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

// Exposition is a parsed /metrics payload.
type Exposition struct {
	// Types maps family name to its declared TYPE.
	Types map[string]string
	// Help maps family name to its HELP line.
	Help map[string]string
	// Samples holds every sample line in order.
	Samples []*Sample
}

// Value returns the value of the series with the given name and label
// pairs (k1, v1, k2, v2, ...), and whether it exists.
func (e *Exposition) Value(name string, kv ...string) (float64, bool) {
	want := make(map[string]string, len(kv)/2)
	for i := 0; i+1 < len(kv); i += 2 {
		want[kv[i]] = kv[i+1]
	}
	for _, s := range e.Samples {
		if s.Name != name || len(s.Labels) != len(want) {
			continue
		}
		match := true
		for k, v := range want {
			if s.Labels[k] != v {
				match = false
				break
			}
		}
		if match {
			return s.Value, true
		}
	}
	return 0, false
}

// ParseExposition parses a Prometheus text-format payload strictly:
//   - every sample's family must have a preceding # TYPE line;
//   - metric and label names must be well-formed;
//   - no duplicate series (same name + label set);
//   - values must parse as floats.
//
// It returns an error describing the first violation.
func ParseExposition(r io.Reader) (*Exposition, error) {
	exp := &Exposition{Types: make(map[string]string), Help: make(map[string]string)}
	seen := make(map[string]int)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, _ := strings.Cut(rest, " ")
			if !metricName(name) {
				return nil, fmt.Errorf("line %d: malformed HELP metric name %q", lineNo, name)
			}
			if _, dup := exp.Help[name]; dup {
				return nil, fmt.Errorf("line %d: duplicate HELP for %q", lineNo, name)
			}
			exp.Help[name] = help
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			rest := strings.TrimPrefix(line, "# TYPE ")
			parts := strings.Fields(rest)
			if len(parts) != 2 {
				return nil, fmt.Errorf("line %d: malformed TYPE line %q", lineNo, line)
			}
			name, typ := parts[0], parts[1]
			if !metricName(name) {
				return nil, fmt.Errorf("line %d: malformed TYPE metric name %q", lineNo, name)
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return nil, fmt.Errorf("line %d: unknown metric type %q", lineNo, typ)
			}
			if _, dup := exp.Types[name]; dup {
				return nil, fmt.Errorf("line %d: duplicate TYPE for %q", lineNo, name)
			}
			exp.Types[name] = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // other comments are legal
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		fam := familyOf(s.Name, exp.Types)
		if fam == "" {
			return nil, fmt.Errorf("line %d: sample %q has no preceding # TYPE", lineNo, s.Name)
		}
		key := s.Key()
		if prev, dup := seen[key]; dup {
			return nil, fmt.Errorf("line %d: duplicate series %s (first at line %d)", lineNo, key, prev)
		}
		seen[key] = lineNo
		exp.Samples = append(exp.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return exp, nil
}

// familyOf resolves a sample name to its declared family: exact match, or
// the histogram sub-series suffixes.
func familyOf(name string, types map[string]string) string {
	if _, ok := types[name]; ok {
		return name
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base != name {
			if t, ok := types[base]; ok && (t == "histogram" || t == "summary") {
				return base
			}
		}
	}
	return ""
}

func parseSample(line string) (*Sample, error) {
	s := &Sample{}
	rest := line
	brace := strings.IndexByte(line, '{')
	sp := strings.IndexByte(line, ' ')
	if brace >= 0 && (sp < 0 || brace < sp) {
		s.Name = line[:brace]
		end := strings.LastIndexByte(line, '}')
		if end < brace {
			return nil, fmt.Errorf("unterminated label set in %q", line)
		}
		labels, err := parseLabels(line[brace+1 : end])
		if err != nil {
			return nil, err
		}
		s.Labels = labels
		rest = strings.TrimSpace(line[end+1:])
	} else {
		if sp < 0 {
			return nil, fmt.Errorf("no value in sample %q", line)
		}
		s.Name = line[:sp]
		rest = strings.TrimSpace(line[sp+1:])
	}
	if !metricName(s.Name) {
		return nil, fmt.Errorf("malformed metric name %q", s.Name)
	}
	// A timestamp may follow the value; the registry never writes one, but
	// accept it for generality.
	fields := strings.Fields(rest)
	if len(fields) == 0 || len(fields) > 2 {
		return nil, fmt.Errorf("malformed sample value in %q", line)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return nil, fmt.Errorf("bad sample value %q: %w", fields[0], err)
	}
	s.Value = v
	return s, nil
}

func parseLabels(s string) (map[string]string, error) {
	out := make(map[string]string)
	i := 0
	for i < len(s) {
		eq := strings.IndexByte(s[i:], '=')
		if eq < 0 {
			return nil, fmt.Errorf("malformed label pair in %q", s)
		}
		name := s[i : i+eq]
		if !labelName(name) {
			return nil, fmt.Errorf("malformed label name %q", name)
		}
		i += eq + 1
		if i >= len(s) || s[i] != '"' {
			return nil, fmt.Errorf("unquoted label value for %q", name)
		}
		i++
		var b strings.Builder
		closed := false
		for i < len(s) {
			c := s[i]
			if c == '\\' && i+1 < len(s) {
				switch s[i+1] {
				case '\\':
					b.WriteByte('\\')
				case '"':
					b.WriteByte('"')
				case 'n':
					b.WriteByte('\n')
				default:
					return nil, fmt.Errorf("bad escape \\%c in label value", s[i+1])
				}
				i += 2
				continue
			}
			if c == '"' {
				closed = true
				i++
				break
			}
			b.WriteByte(c)
			i++
		}
		if !closed {
			return nil, fmt.Errorf("unterminated label value for %q", name)
		}
		if _, dup := out[name]; dup {
			return nil, fmt.Errorf("duplicate label %q", name)
		}
		out[name] = b.String()
		if i < len(s) {
			if s[i] != ',' {
				return nil, fmt.Errorf("expected ',' between labels in %q", s)
			}
			i++
		}
	}
	return out, nil
}

func metricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if i > 0 {
			ok = ok || (c >= '0' && c <= '9')
		}
		if !ok {
			return false
		}
	}
	return true
}

func labelName(s string) bool {
	if s == "" || strings.HasPrefix(s, "__") {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if i > 0 {
			ok = ok || (c >= '0' && c <= '9')
		}
		if !ok {
			return false
		}
	}
	return true
}
