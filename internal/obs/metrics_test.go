package obs

import (
	"math"
	"net/http/httptest"
	"strings"
	"testing"
)

// buildTestRegistry exercises every metric kind the registry offers.
func buildTestRegistry() *Registry {
	r := NewRegistry()
	c := r.Counter("aiql_test_events_total", "Events observed.")
	c.Inc()
	c.Add(2)
	c.Add(-5) // dropped: counters stay monotonic
	r.CounterFunc("aiql_test_func_total", "Func counter.", func() float64 { return 42 })
	g := r.Gauge("aiql_test_depth_bytes", "Queue depth.")
	g.Set(100)
	g.Add(-25)
	r.GaugeFunc("aiql_test_live_count", "Live things.", func() float64 { return 7 })
	h := r.Histogram("aiql_test_latency_seconds", "Latency.", 0.01, 0.1, 1)
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5) // lands only in +Inf
	cv := r.CounterVec("aiql_test_requests_total", "Requests by path.", "path", "code")
	cv.With("/query", "200").Add(3)
	cv.With("/query", "500").Inc()
	cv.With(`/we"ird\path`, "200").Inc() // exercises label escaping
	gv := r.GaugeVec("aiql_test_lag_count", "Lag by shard.", "shard")
	gv.With("0").Set(5)
	gv.With("1").Set(9)
	r.GaugeVecFunc("aiql_test_watermark_count", "Watermarks.", []string{"shard"}, func(emit func([]string, float64)) {
		emit([]string{"a"}, 1)
		emit([]string{"b"}, 2)
	})
	return r
}

// TestExpositionRoundTrip is the parser-roundtrip required by the issue:
// render the registry, then strictly parse it back — every metric name and
// label well-formed, every family typed, no duplicate series.
func TestExpositionRoundTrip(t *testing.T) {
	r := buildTestRegistry()
	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	exp, err := ParseExposition(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\npayload:\n%s", err, b.String())
	}

	wantTypes := map[string]string{
		"aiql_test_events_total":    "counter",
		"aiql_test_func_total":      "counter",
		"aiql_test_depth_bytes":     "gauge",
		"aiql_test_live_count":      "gauge",
		"aiql_test_latency_seconds": "histogram",
		"aiql_test_requests_total":  "counter",
		"aiql_test_lag_count":       "gauge",
		"aiql_test_watermark_count": "gauge",
	}
	for name, typ := range wantTypes {
		if exp.Types[name] != typ {
			t.Errorf("family %s: type %q, want %q", name, exp.Types[name], typ)
		}
		if exp.Help[name] == "" {
			t.Errorf("family %s: missing HELP", name)
		}
	}

	checks := []struct {
		name string
		kv   []string
		want float64
	}{
		{"aiql_test_events_total", nil, 3},
		{"aiql_test_func_total", nil, 42},
		{"aiql_test_depth_bytes", nil, 75},
		{"aiql_test_live_count", nil, 7},
		{"aiql_test_requests_total", []string{"path", "/query", "code", "200"}, 3},
		{"aiql_test_requests_total", []string{"path", "/query", "code", "500"}, 1},
		{"aiql_test_requests_total", []string{"path", `/we"ird\path`, "code", "200"}, 1},
		{"aiql_test_lag_count", []string{"shard", "1"}, 9},
		{"aiql_test_watermark_count", []string{"shard", "b"}, 2},
		{"aiql_test_latency_seconds_count", nil, 4},
		{"aiql_test_latency_seconds_bucket", []string{"le", "0.01"}, 1},
		{"aiql_test_latency_seconds_bucket", []string{"le", "0.1"}, 2},
		{"aiql_test_latency_seconds_bucket", []string{"le", "1"}, 3},
		{"aiql_test_latency_seconds_bucket", []string{"le", "+Inf"}, 4},
	}
	for _, c := range checks {
		v, ok := exp.Value(c.name, c.kv...)
		if !ok {
			t.Errorf("series %s%v missing", c.name, c.kv)
			continue
		}
		if v != c.want {
			t.Errorf("series %s%v = %v, want %v", c.name, c.kv, v, c.want)
		}
	}
	if sum, ok := exp.Value("aiql_test_latency_seconds_sum"); !ok || math.Abs(sum-5.555) > 1e-9 {
		t.Errorf("histogram sum = %v ok=%v, want 5.555", sum, ok)
	}
}

func TestHistogramBucketsCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("aiql_cum_seconds", "c", 1, 2, 3)
	for _, v := range []float64{0.5, 1.5, 2.5, 10} {
		h.Observe(v)
	}
	var b strings.Builder
	r.WriteTo(&b)
	exp, err := ParseExposition(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for _, le := range []string{"1", "2", "3", "+Inf"} {
		v, ok := exp.Value("aiql_cum_seconds_bucket", "le", le)
		if !ok {
			t.Fatalf("bucket le=%s missing", le)
		}
		if v < prev {
			t.Fatalf("buckets not cumulative: le=%s is %v after %v", le, v, prev)
		}
		prev = v
	}
	if prev != 4 {
		t.Fatalf("+Inf bucket = %v, want 4", prev)
	}
}

func mustPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", what)
		}
	}()
	f()
}

func TestRegistrationValidation(t *testing.T) {
	r := NewRegistry()
	r.Counter("aiql_ok_total", "ok")
	mustPanic(t, "duplicate name", func() { r.Gauge("aiql_ok_total", "dup") })
	mustPanic(t, "counter without _total", func() { r.Counter("aiql_bad_counter", "x") })
	mustPanic(t, "histogram without unit", func() { r.Histogram("aiql_bad_hist_total", "x") })
	mustPanic(t, "gauge without unit", func() { r.Gauge("aiql_bad_gauge", "x") })
	mustPanic(t, "camelCase name", func() { r.Counter("aiqlBadName_total", "x") })
	mustPanic(t, "leading digit", func() { r.Counter("1aiql_total", "x") })
	mustPanic(t, "bad label name", func() { r.CounterVec("aiql_lbl_total", "x", "BadLabel") })
	mustPanic(t, "vec without labels", func() { r.CounterVec("aiql_nolbl_total", "x") })
	mustPanic(t, "non-increasing buckets", func() { r.Histogram("aiql_buck_seconds", "x", 1, 1) })
	mustPanic(t, "wrong label arity", func() {
		v := r.CounterVec("aiql_arity_total", "x", "a", "b")
		v.With("only-one")
	})
}

func TestServeHTTPContentType(t *testing.T) {
	r := buildTestRegistry()
	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	ct := rec.Header().Get("Content-Type")
	if !strings.Contains(ct, "text/plain") || !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
	if _, err := ParseExposition(strings.NewReader(rec.Body.String())); err != nil {
		t.Fatalf("served body does not parse: %v", err)
	}
}

func TestParseExpositionRejectsMalformed(t *testing.T) {
	bad := []struct{ name, payload string }{
		{"untyped sample", "aiql_x_total 1\n"},
		{"duplicate series", "# TYPE aiql_x_total counter\naiql_x_total 1\naiql_x_total 2\n"},
		{"duplicate TYPE", "# TYPE aiql_x_total counter\n# TYPE aiql_x_total counter\n"},
		{"bad metric name", "# TYPE aiql_x_total counter\naiql-x-total 1\n"},
		{"bad value", "# TYPE aiql_x_total counter\naiql_x_total pizza\n"},
		{"unterminated labels", "# TYPE aiql_x_total counter\naiql_x_total{a=\"b\" 1\n"},
		{"unknown type", "# TYPE aiql_x_total widget\n"},
	}
	for _, c := range bad {
		if _, err := ParseExposition(strings.NewReader(c.payload)); err == nil {
			t.Errorf("%s: parsed without error", c.name)
		}
	}
}

func TestNilMetricOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(1)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
}

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("aiql_conc_total", "c")
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
			done <- struct{}{}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	if c.Value() != 8000 {
		t.Fatalf("concurrent count = %v, want 8000", c.Value())
	}
}
