package obs

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestSlowLogKeepsNSlowest(t *testing.T) {
	l := NewSlowLog(3)
	for _, d := range []float64{5, 1, 9, 2, 7, 3, 8} {
		l.Record(&SlowEntry{TraceID: "t", Query: "q", DurMs: d})
	}
	if l.Len() != 3 {
		t.Fatalf("len = %d, want 3", l.Len())
	}
	snap := l.Snapshot()
	got := []float64{snap[0].DurMs, snap[1].DurMs, snap[2].DurMs}
	want := []float64{9, 8, 7}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("slowest-first = %v, want %v", got, want)
		}
	}
}

func TestSlowLogNilAndDefaults(t *testing.T) {
	var l *SlowLog
	l.Record(&SlowEntry{DurMs: 1}) // no panic
	if l.Len() != 0 || l.Snapshot() != nil {
		t.Fatal("nil slow log should be empty")
	}
	if NewSlowLog(0).cap != 32 {
		t.Fatal("default capacity should be 32")
	}
}

func TestSlowLogTruncatesQuery(t *testing.T) {
	l := NewSlowLog(1)
	l.Record(&SlowEntry{Query: strings.Repeat("x", maxSlowQueryLen+100), DurMs: 1})
	q := l.Snapshot()[0].Query
	if len(q) > maxSlowQueryLen+len("…") {
		t.Fatalf("query not truncated: %d bytes", len(q))
	}
	if !strings.HasSuffix(q, "…") {
		t.Fatal("truncated query should end with ellipsis")
	}
}

func TestInflightRegistry(t *testing.T) {
	r := NewInflight()
	tr := NewTrace("live-1")
	leg := tr.Span("scan")
	q := r.Register(tr, "ProcessEvent p")
	q2 := r.Register(nil, "second")
	if r.Len() != 2 {
		t.Fatalf("len = %d, want 2", r.Len())
	}
	q.AddRows(40)
	q.AddRows(2)
	snap := r.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot len = %d", len(snap))
	}
	if snap[0].TraceID != "live-1" || snap[0].Rows != 42 {
		t.Fatalf("first entry = %+v", snap[0])
	}
	// The live trace's spans are visible mid-flight.
	if len(snap[0].Spans) != 1 || snap[0].Spans[0].Name != "scan" {
		t.Fatalf("mid-flight spans = %+v", snap[0].Spans)
	}
	leg.End()
	q.Done()
	q2.Done()
	if r.Len() != 0 {
		t.Fatalf("len after Done = %d", r.Len())
	}

	var nilReg *Inflight
	nq := nilReg.Register(tr, "x")
	if nq != nil {
		t.Fatal("nil registry should return nil query")
	}
	nq.AddRows(1)
	nq.Done()
	if nilReg.Snapshot() != nil || nilReg.Len() != 0 {
		t.Fatal("nil registry should be empty")
	}
}

func TestLoggerText(t *testing.T) {
	var b strings.Builder
	l := NewLogger(&b, LogText)
	ctx := WithTrace(context.Background(), NewTrace("abc123"))
	l.Log(ctx, "query done", "dur_ms", 12.5, "path", "/query it", "rows", 3)
	line := b.String()
	if !strings.Contains(line, "trace=abc123") {
		t.Fatalf("line missing trace id: %q", line)
	}
	if !strings.Contains(line, "dur_ms=12.5") || !strings.Contains(line, `path="/query it"`) {
		t.Fatalf("line = %q", line)
	}
}

func TestLoggerJSON(t *testing.T) {
	var b strings.Builder
	l := NewLogger(&b, LogJSON)
	ctx := WithTrace(context.Background(), NewTrace("jsontrace"))
	l.Log(ctx, "ingest", "events", 100)
	var obj map[string]any
	if err := json.Unmarshal([]byte(b.String()), &obj); err != nil {
		t.Fatalf("line is not JSON: %v (%q)", err, b.String())
	}
	if obj["msg"] != "ingest" || obj["trace"] != "jsontrace" || obj["events"] != float64(100) {
		t.Fatalf("obj = %v", obj)
	}
	if _, err := time.Parse(time.RFC3339Nano, obj["time"].(string)); err != nil {
		t.Fatalf("bad time field: %v", err)
	}
}

func TestLoggerNilAndParse(t *testing.T) {
	var l *Logger
	l.Log(context.Background(), "dropped") // no panic

	if f, err := ParseLogFormat(""); err != nil || f != LogText {
		t.Fatal("empty format should be text")
	}
	if f, err := ParseLogFormat("json"); err != nil || f != LogJSON {
		t.Fatal("json format should parse")
	}
	if _, err := ParseLogFormat("xml"); err == nil {
		t.Fatal("unknown format should error")
	}
}
