package obs

import (
	"context"
	"testing"
	"time"
)

func TestNilTraceAndSpanAreNoOps(t *testing.T) {
	var tr *Trace
	if tr.ID() != "" {
		t.Fatalf("nil trace ID = %q, want empty", tr.ID())
	}
	if !tr.Start().IsZero() {
		t.Fatal("nil trace start should be zero")
	}
	if tr.Snapshot() != nil {
		t.Fatal("nil trace snapshot should be nil")
	}
	s := tr.Span("anything")
	if s != nil {
		t.Fatal("span of nil trace should be nil")
	}
	// Every span method must be callable on nil.
	s.End()
	s.EndWithDuration(time.Second)
	s.Add("rows", 5)
	s.Set("k", "v")
	if c := s.Child("child"); c != nil {
		t.Fatal("child of nil span should be nil")
	}
}

func TestNewTraceIDFormat(t *testing.T) {
	a, b := NewTraceID(), NewTraceID()
	if len(a) != 16 || len(b) != 16 {
		t.Fatalf("trace IDs %q/%q not 16 chars", a, b)
	}
	if a == b {
		t.Fatalf("two minted IDs collided: %q", a)
	}
	if !ValidTraceID(a) {
		t.Fatalf("minted ID %q not valid", a)
	}
}

func TestValidTraceID(t *testing.T) {
	for _, ok := range []string{"a", "abc-DEF_123", "0123456789abcdef"} {
		if !ValidTraceID(ok) {
			t.Errorf("ValidTraceID(%q) = false, want true", ok)
		}
	}
	long := make([]byte, 65)
	for i := range long {
		long[i] = 'a'
	}
	for _, bad := range []string{"", "has space", "semi;colon", "new\nline", string(long), "ünïcode"} {
		if ValidTraceID(bad) {
			t.Errorf("ValidTraceID(%q) = true, want false", bad)
		}
	}
}

func TestNewTraceMintsOnInvalidID(t *testing.T) {
	tr := NewTrace("bad id!")
	if !ValidTraceID(tr.ID()) {
		t.Fatalf("trace with invalid input ID got %q", tr.ID())
	}
	tr2 := NewTrace("client-supplied-1")
	if tr2.ID() != "client-supplied-1" {
		t.Fatalf("valid client ID not kept: got %q", tr2.ID())
	}
}

func TestSnapshotBuildsSpanTree(t *testing.T) {
	tr := NewTrace("tree-test")
	root := tr.Span("query")
	parse := root.Child("parse")
	parse.End()
	scan := root.Child("scan")
	scan.Add("rows", 10)
	scan.Add("rows", 5)
	scan.Set("partition", "2024-01-01")
	scan.EndWithDuration(25 * time.Millisecond)
	root.End()

	snap := tr.Snapshot()
	if snap.ID != "tree-test" {
		t.Fatalf("snapshot ID = %q", snap.ID)
	}
	if len(snap.Spans) != 1 {
		t.Fatalf("want 1 root span, got %d", len(snap.Spans))
	}
	q := snap.Spans[0]
	if q.Name != "query" || len(q.Children) != 2 {
		t.Fatalf("root = %q with %d children, want query with 2", q.Name, len(q.Children))
	}
	// Children sorted by start time: parse opened before scan.
	if q.Children[0].Name != "parse" || q.Children[1].Name != "scan" {
		t.Fatalf("children order = [%s %s]", q.Children[0].Name, q.Children[1].Name)
	}
	sc := q.Children[1]
	if sc.Counters["rows"] != 15 {
		t.Fatalf("scan rows counter = %d, want 15 (additive)", sc.Counters["rows"])
	}
	if sc.Attrs["partition"] != "2024-01-01" {
		t.Fatalf("scan attrs = %v", sc.Attrs)
	}
	if sc.DurMs != 25 {
		t.Fatalf("EndWithDuration span dur = %vms, want 25", sc.DurMs)
	}
	if snap.DurMs <= 0 {
		t.Fatalf("trace DurMs = %v, want > 0", snap.DurMs)
	}
}

func TestSnapshotMidFlight(t *testing.T) {
	tr := NewTrace("")
	open := tr.Span("still-running")
	snap := tr.Snapshot()
	if len(snap.Spans) != 1 || snap.Spans[0].DurMs != 0 {
		t.Fatalf("un-ended span should render zero duration, got %+v", snap.Spans[0])
	}
	open.End()
	open.End() // second End keeps the first duration
	d := tr.Snapshot().Spans[0].DurMs
	open.EndWithDuration(99 * time.Second)
	if got := tr.Snapshot().Spans[0].DurMs; got != d {
		t.Fatalf("duration changed after re-End: %v -> %v", d, got)
	}
}

func TestContextPlumbing(t *testing.T) {
	ctx := context.Background()
	if FromContext(ctx) != nil || TraceID(ctx) != "" || SpanFromContext(ctx) != nil {
		t.Fatal("empty context should carry no trace/span")
	}
	tr := NewTrace("ctx-id")
	ctx = WithTrace(ctx, tr)
	if FromContext(ctx) != tr {
		t.Fatal("FromContext did not round-trip the trace")
	}
	if TraceID(ctx) != "ctx-id" {
		t.Fatalf("TraceID(ctx) = %q", TraceID(ctx))
	}
	s := tr.Span("stage")
	ctx = WithSpan(ctx, s)
	if SpanFromContext(ctx) != s {
		t.Fatal("SpanFromContext did not round-trip the span")
	}
}

func TestTraceConcurrentSpans(t *testing.T) {
	tr := NewTrace("")
	root := tr.Span("root")
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 100; j++ {
				c := root.Child("leg")
				c.Add("n", 1)
				c.End()
			}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	root.End()
	snap := tr.Snapshot()
	if got := len(snap.Spans[0].Children); got != 800 {
		t.Fatalf("got %d children, want 800", got)
	}
}
