package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// LogFormat selects the logger's line encoding.
type LogFormat int

const (
	// LogText is the human-readable default: time, level, message, then
	// key=value pairs.
	LogText LogFormat = iota
	// LogJSON emits one JSON object per line, suitable for log pipelines.
	LogJSON
)

// ParseLogFormat maps the -log-format flag values.
func ParseLogFormat(s string) (LogFormat, error) {
	switch s {
	case "", "text":
		return LogText, nil
	case "json":
		return LogJSON, nil
	default:
		return LogText, fmt.Errorf("unknown log format %q (want text or json)", s)
	}
}

// Logger writes structured, trace-stamped log lines. Every request-scoped
// line carries its trace ID, so one investigation is greppable across the
// coordinator and every worker it fanned out to. A nil *Logger is valid
// and silent, so instrumentation sites log unconditionally.
type Logger struct {
	mu     sync.Mutex
	w      io.Writer
	format LogFormat
}

// NewLogger creates a logger writing to w.
func NewLogger(w io.Writer, format LogFormat) *Logger {
	return &Logger{w: w, format: format}
}

// Log writes one line: a message plus alternating key, value pairs. The
// context's trace ID, when present, is added as trace=<id>. Values are
// rendered with %v.
func (l *Logger) Log(ctx context.Context, msg string, kv ...any) {
	if l == nil {
		return
	}
	//aiql:ignore wallclock -- log timestamps are observability wall time by design
	now := time.Now().UTC()
	type pair struct {
		k string
		v any
	}
	pairs := make([]pair, 0, len(kv)/2+1)
	if id := TraceID(ctx); id != "" {
		pairs = append(pairs, pair{"trace", id})
	}
	for i := 0; i+1 < len(kv); i += 2 {
		k, ok := kv[i].(string)
		if !ok {
			k = fmt.Sprintf("%v", kv[i])
		}
		pairs = append(pairs, pair{k, kv[i+1]})
	}

	var line []byte
	switch l.format {
	case LogJSON:
		obj := make(map[string]any, len(pairs)+2)
		obj["time"] = now.Format(time.RFC3339Nano)
		obj["msg"] = msg
		for _, p := range pairs {
			obj[p.k] = p.v
		}
		b, err := json.Marshal(obj)
		if err != nil {
			// Unmarshalable value: degrade to the stringified fallback
			// rather than dropping the line.
			safe := map[string]any{"time": obj["time"], "msg": msg, "marshal_error": err.Error()}
			b, _ = json.Marshal(safe)
		}
		line = append(b, '\n')
	default:
		var b strings.Builder
		b.WriteString(now.Format("2006-01-02T15:04:05.000Z"))
		b.WriteByte(' ')
		b.WriteString(msg)
		for _, p := range pairs {
			b.WriteByte(' ')
			b.WriteString(p.k)
			b.WriteByte('=')
			b.WriteString(textValue(p.v))
		}
		b.WriteByte('\n')
		line = []byte(b.String())
	}

	l.mu.Lock()
	_, _ = l.w.Write(line)
	l.mu.Unlock()
}

// textValue renders a value for the text format, quoting when it contains
// spaces or quotes so lines stay machine-splittable.
func textValue(v any) string {
	s := fmt.Sprintf("%v", v)
	if strings.ContainsAny(s, " \t\n\"=") {
		return fmt.Sprintf("%q", s)
	}
	return s
}
