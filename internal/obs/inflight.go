package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// InflightQuery is one live query registered for /debug/queries. Rows is
// updated by the streaming writer as rows leave the process, so an analyst
// can tell "still scanning" from "streaming a huge result".
type InflightQuery struct {
	id    uint64
	trace *Trace
	query string
	start time.Time
	rows  atomic.Int64
	reg   *Inflight
}

// AddRows notes rows handed to the client so far.
func (q *InflightQuery) AddRows(n int) {
	if q == nil {
		return
	}
	q.rows.Add(int64(n))
}

// Trace returns the query's trace (nil when tracing was off).
func (q *InflightQuery) Trace() *Trace {
	if q == nil {
		return nil
	}
	return q.trace
}

// Done removes the query from the registry.
func (q *InflightQuery) Done() {
	if q == nil {
		return
	}
	q.reg.remove(q.id)
}

// Inflight tracks the queries currently executing in this process.
type Inflight struct {
	mu     sync.Mutex
	nextID uint64
	live   map[uint64]*InflightQuery
}

// NewInflight creates an empty in-flight registry.
func NewInflight() *Inflight {
	return &Inflight{live: make(map[uint64]*InflightQuery)}
}

// Register adds a query; the caller must Done() it when finished. A nil
// registry returns a nil query (all methods no-op).
func (r *Inflight) Register(tr *Trace, query string) *InflightQuery {
	if r == nil {
		return nil
	}
	const maxQueryLen = 4096
	if len(query) > maxQueryLen {
		query = query[:maxQueryLen] + "…"
	}
	start := tr.Start()
	if start.IsZero() {
		//aiql:ignore wallclock -- in-flight elapsed time is observability wall time by design
		start = time.Now()
	}
	q := &InflightQuery{trace: tr, query: query, start: start, reg: r}
	r.mu.Lock()
	r.nextID++
	q.id = r.nextID
	r.live[q.id] = q
	r.mu.Unlock()
	return q
}

func (r *Inflight) remove(id uint64) {
	r.mu.Lock()
	delete(r.live, id)
	r.mu.Unlock()
}

// Len returns the number of live queries.
func (r *Inflight) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.live)
}

// InflightJSON is the wire form of one live query in /debug/queries.
type InflightJSON struct {
	TraceID   string  `json:"trace_id,omitempty"`
	Query     string  `json:"query"`
	Start     string  `json:"start"`
	ElapsedMs float64 `json:"elapsed_ms"`
	Rows      int64   `json:"rows_streamed"`
	// Spans lists the stages recorded so far — for a coordinator query the
	// worker legs show up here while they are still streaming.
	Spans []*SpanJSON `json:"spans,omitempty"`
}

// Snapshot renders the live queries, oldest first.
func (r *Inflight) Snapshot() []*InflightJSON {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	live := make([]*InflightQuery, 0, len(r.live))
	for _, q := range r.live {
		live = append(live, q)
	}
	r.mu.Unlock()
	sort.Slice(live, func(i, j int) bool {
		if !live[i].start.Equal(live[j].start) {
			return live[i].start.Before(live[j].start)
		}
		return live[i].id < live[j].id
	})
	out := make([]*InflightJSON, len(live))
	for i, q := range live {
		j := &InflightJSON{
			TraceID: q.trace.ID(),
			Query:   q.query,
			Start:   FormatStart(q.start),
			//aiql:ignore wallclock -- in-flight elapsed time is observability wall time by design
			ElapsedMs: float64(time.Since(q.start).Microseconds()) / 1000,
			Rows:      q.rows.Load(),
		}
		if snap := q.trace.Snapshot(); snap != nil {
			j.Spans = snap.Spans
		}
		out[i] = j
	}
	return out
}
