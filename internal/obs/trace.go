// Package obs is aiql's dependency-free observability layer: request-scoped
// traces with cheap spans, a hand-rolled Prometheus-style metrics registry,
// a bounded slow-query log, an in-flight request registry, and a structured
// logger that stamps every line with its trace ID.
//
// The package is built on the standard library alone and imports nothing
// from the rest of the repo, so every layer — storage, WAL, engine, cluster,
// server — may depend on it without cycles.
//
// Tracing is strictly opt-in per request: a context without a trace costs
// one context lookup and a nil check at each instrumentation site, and every
// method on a nil *Trace or nil *Span is a no-op, so the hot scan kernel
// pays nothing when tracing is off (BenchmarkTraceOverhead pins this).
// Spans are per-stage, never per-row: a query records on the order of ten
// spans (parse, plan, one per data query, join, merge, per-worker legs), not
// one per matching event.
package obs

import (
	"crypto/rand"
	"encoding/hex"
	"sort"
	"sync"
	"time"
)

// TraceIDHeader is the HTTP header that carries a trace ID between the
// client, the coordinator, and the workers. The server edge accepts a
// well-formed incoming ID (so one investigation is greppable across every
// process it touched) or mints a fresh one.
const TraceIDHeader = "X-Aiql-Trace"

// NewTraceID mints a 16-hex-character random trace ID.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively unreachable; a fixed fallback
		// ID keeps tracing best-effort rather than fatal.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// ValidTraceID reports whether s is acceptable as an externally supplied
// trace ID: 1–64 characters drawn from [a-zA-Z0-9_-]. Anything else is
// discarded and re-minted, so a hostile header cannot smuggle log-breaking
// bytes into every annotated line.
func ValidTraceID(s string) bool {
	if len(s) == 0 || len(s) > 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
		default:
			return false
		}
	}
	return true
}

// Trace is one request's span collection. All methods are safe for
// concurrent use and safe on a nil receiver (no-ops), so instrumentation
// sites never need to branch on "is tracing on".
type Trace struct {
	id    string
	start time.Time //aiql:ignore wallclock -- obs is the observability clock edge; span timing is wall time by design

	mu    sync.Mutex
	spans []*Span
	next  int
}

// NewTrace creates a trace with the given ID (minting one if empty).
func NewTrace(id string) *Trace {
	if !ValidTraceID(id) {
		id = NewTraceID()
	}
	//aiql:ignore wallclock -- trace start is observability wall time by design
	return &Trace{id: id, start: time.Now()}
}

// ID returns the trace ID ("" on a nil trace).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Start returns the trace's start time.
func (t *Trace) Start() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.start
}

// Span is one timed stage of a trace. Counters are additive (several
// sub-scans of one data query fold into the same span); attributes are
// last-write-wins strings.
type Span struct {
	tr     *Trace
	id     int
	parent int // -1 for a root span

	name  string
	begin time.Time

	mu       sync.Mutex
	durNanos int64
	ended    bool
	counters map[string]int64
	attrs    map[string]string
}

// Span opens a root-level span. End it (or EndWithDuration it) when the
// stage completes; an un-ended span renders with a zero duration.
func (t *Trace) Span(name string) *Span {
	return t.newSpan(name, -1)
}

func (t *Trace) newSpan(name string, parent int) *Span {
	if t == nil {
		return nil
	}
	//aiql:ignore wallclock -- span timing is observability wall time by design
	s := &Span{tr: t, parent: parent, name: name, begin: time.Now()}
	t.mu.Lock()
	s.id = t.next
	t.next++
	t.spans = append(t.spans, s)
	t.mu.Unlock()
	return s
}

// Child opens a span nested under s.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.tr.newSpan(name, s.id)
}

// End records the span's wall-clock duration since it was opened. Repeated
// Ends keep the first recorded duration.
func (s *Span) End() {
	if s == nil {
		return
	}
	//aiql:ignore wallclock -- span timing is observability wall time by design
	d := time.Since(s.begin)
	s.mu.Lock()
	if !s.ended {
		s.ended = true
		s.durNanos = d.Nanoseconds()
	}
	s.mu.Unlock()
}

// EndWithDuration records an explicit duration — used by cursor-shaped
// stages whose cost is the time spent inside Next calls, not the wall time
// between open and close (which would charge the consumer's think time to
// the producer).
func (s *Span) EndWithDuration(d time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.ended = true
		s.durNanos = d.Nanoseconds()
	}
	s.mu.Unlock()
}

// Add accumulates a counter on the span.
func (s *Span) Add(counter string, v int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.counters == nil {
		s.counters = make(map[string]int64, 4)
	}
	s.counters[counter] += v
	s.mu.Unlock()
}

// Set records a string attribute on the span (last write wins).
func (s *Span) Set(attr, val string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = make(map[string]string, 4)
	}
	s.attrs[attr] = val
	s.mu.Unlock()
}

// SpanJSON is the wire form of one span in a rendered trace tree.
type SpanJSON struct {
	Name string `json:"name"`
	// StartMs is the span's offset from the trace start; DurMs its
	// duration. Both in milliseconds with microsecond precision.
	StartMs  float64           `json:"start_ms"`
	DurMs    float64           `json:"dur_ms"`
	Counters map[string]int64  `json:"counters,omitempty"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Children []*SpanJSON       `json:"children,omitempty"`
}

// TraceJSON is the wire form of a whole trace: the optional "trace" block
// of a query response, and the slow-log entry payload.
type TraceJSON struct {
	ID    string      `json:"id"`
	DurMs float64     `json:"dur_ms"`
	Spans []*SpanJSON `json:"spans,omitempty"`
}

// Snapshot renders the trace's current span tree. Safe to call while spans
// are still being recorded (an in-flight query inspected via
// /debug/queries); un-ended spans report a zero duration.
func (t *Trace) Snapshot() *TraceJSON {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	spans := make([]*Span, len(t.spans))
	copy(spans, t.spans)
	t.mu.Unlock()

	nodes := make([]*SpanJSON, len(spans))
	var total float64
	for i, s := range spans {
		s.mu.Lock()
		node := &SpanJSON{
			Name:    s.name,
			StartMs: float64(s.begin.Sub(t.start).Microseconds()) / 1000,
			DurMs:   float64(s.durNanos) / 1e6,
		}
		if len(s.counters) > 0 {
			node.Counters = make(map[string]int64, len(s.counters))
			for k, v := range s.counters {
				node.Counters[k] = v
			}
		}
		if len(s.attrs) > 0 {
			node.Attrs = make(map[string]string, len(s.attrs))
			for k, v := range s.attrs {
				node.Attrs[k] = v
			}
		}
		s.mu.Unlock()
		nodes[i] = node
		if end := node.StartMs + node.DurMs; end > total {
			total = end
		}
	}
	out := &TraceJSON{ID: t.id, DurMs: total}
	for i, s := range spans {
		if s.parent >= 0 && s.parent < len(nodes) {
			nodes[s.parent].Children = append(nodes[s.parent].Children, nodes[i])
		} else {
			out.Spans = append(out.Spans, nodes[i])
		}
	}
	sortSpans(out.Spans)
	return out
}

func sortSpans(spans []*SpanJSON) {
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].StartMs < spans[j].StartMs })
	for _, s := range spans {
		sortSpans(s.Children)
	}
}
