package obs

import "time"

// obs is the designated observability clock edge: library packages (wal,
// storage, engine) are barred from reading the wall clock directly by the
// wallclock analyzer, so durations destined for metrics or trace spans are
// measured through these helpers. They must never feed query semantics —
// time windows come from the query, not the clock.

// Now returns the current time (monotonic-clock bearing) for an
// observability measurement.
func Now() time.Time {
	//aiql:ignore wallclock -- obs is the observability clock edge by design
	return time.Now()
}

// Since returns the elapsed time since start.
func Since(start time.Time) time.Duration {
	//aiql:ignore wallclock -- obs is the observability clock edge by design
	return time.Since(start)
}
