package pred

import (
	"math/bits"
	"strconv"

	"aiql/internal/types"
)

// Batch (vectorized) predicate evaluation. The columnar storage path hands
// the kernel one block of events at a time as typed columns; BatchEval
// evaluates a compiled predicate over the whole block into a selection
// bitmap instead of calling Eval once per row. The semantics are exactly
// Eval's — including its string-vs-numeric comparison rules — which is why
// BatchEval refuses (returns false) whenever a subtree cannot be proven to
// produce bit-for-bit identical verdicts; the caller then falls back to
// row-at-a-time Eval for the block.

// Bitmap is a dense selection vector: bit i set means row i is selected.
// All operations treat the bitmap as sized by the row count passed to them;
// bits past the row count are undefined and must never be read unbounded.
type Bitmap []uint64

// NewBitmap allocates a bitmap able to hold n rows.
func NewBitmap(n int) Bitmap { return make(Bitmap, (n+63)/64) }

// Reset clears every word so the bitmap can be reused across blocks.
func (b Bitmap) Reset() {
	for i := range b {
		b[i] = 0
	}
}

// SetAll selects rows [0, n).
func (b Bitmap) SetAll(n int) {
	full := n / 64
	for i := 0; i < full; i++ {
		b[i] = ^uint64(0)
	}
	if rem := n % 64; rem > 0 {
		b[full] = (uint64(1) << rem) - 1
	}
	for i := full + 1; i < len(b); i++ {
		b[i] = 0
	}
	if n%64 == 0 && full < len(b) {
		b[full] = 0
	}
}

// Set selects row i.
func (b Bitmap) Set(i int) { b[i/64] |= 1 << (i % 64) }

// Get reports whether row i is selected.
func (b Bitmap) Get(i int) bool { return b[i/64]&(1<<(i%64)) != 0 }

// And intersects o into b.
func (b Bitmap) And(o Bitmap) {
	for i := range b {
		b[i] &= o[i]
	}
}

// Or unions o into b.
func (b Bitmap) Or(o Bitmap) {
	for i := range b {
		b[i] |= o[i]
	}
}

// Not complements the first n rows of b in place (tail bits cleared).
func (b Bitmap) Not(n int) {
	full := n / 64
	for i := 0; i < full; i++ {
		b[i] = ^b[i]
	}
	if rem := n % 64; rem > 0 {
		b[full] = ^b[full] & ((uint64(1) << rem) - 1)
	}
}

// Count returns the number of selected rows among the first n.
func (b Bitmap) Count(n int) int {
	total := 0
	full := n / 64
	for i := 0; i < full; i++ {
		total += bits.OnesCount64(b[i])
	}
	if rem := n % 64; rem > 0 {
		total += bits.OnesCount64(b[full] & ((uint64(1) << rem) - 1))
	}
	return total
}

// ForEach invokes fn for every selected row among the first n, ascending;
// fn returning false stops the walk early and ForEach returns false.
func (b Bitmap) ForEach(n int, fn func(i int) bool) bool {
	for w := 0; w*64 < n; w++ {
		word := b[w]
		if rem := n - w*64; rem < 64 {
			word &= (uint64(1) << rem) - 1
		}
		for word != 0 {
			bit := bits.TrailingZeros64(word)
			if !fn(w*64 + bit) {
				return false
			}
			word &= word - 1
		}
	}
	return true
}

// ColumnSource exposes one block of events as typed columns. Int64Column
// serves the numeric event attributes (amount, failcode, sequence,
// starttime, endtime, agentid, id); OpColumn serves the operation code,
// from which the string attributes optype and access derive.
type ColumnSource interface {
	// NumRows returns the number of rows in the block.
	NumRows() int
	// Int64Column returns the named attribute as an int64 column, or false
	// when the attribute has no numeric column.
	Int64Column(attr string) ([]int64, bool)
	// OpColumn returns the per-row operation codes, or false when
	// unavailable.
	OpColumn() ([]types.Op, bool)
}

// opDerivedAttrs are event attributes fully determined by the operation
// code; a Cond over one of them vectorizes through a per-op truth table no
// matter which comparison it uses (LIKE patterns included).
func opDerived(attr string) bool {
	return attr == types.EvtAttrOpType || attr == types.EvtAttrAccess
}

// BatchEval evaluates p over the block's rows, writing the selection into
// out (which must hold src.NumRows() rows; prior contents are overwritten).
// It returns false — leaving out unspecified — when p contains a subtree
// whose vectorized verdict cannot be guaranteed identical to Eval's; the
// caller must then fall back to per-row evaluation.
func BatchEval(p Pred, src ColumnSource, out Bitmap) bool {
	n := src.NumRows()
	switch v := p.(type) {
	case nil, truePred:
		out.SetAll(n)
		return true
	case *Cond:
		return batchCond(v, src, out)
	case *Not:
		if !BatchEval(v.X, src, out) {
			return false
		}
		out.Not(n)
		return true
	case *And:
		out.SetAll(n)
		tmp := NewBitmap(n)
		for _, x := range v.Xs {
			if !BatchEval(x, src, tmp) {
				return false
			}
			out.And(tmp)
		}
		return true
	case *Or:
		if len(v.Xs) == 0 {
			// Eval returns true for an empty Or.
			out.SetAll(n)
			return true
		}
		out.Reset()
		tmp := NewBitmap(n)
		for _, x := range v.Xs {
			if !BatchEval(x, src, tmp) {
				return false
			}
			out.Or(tmp)
		}
		return true
	default:
		return false
	}
}

func batchCond(c *Cond, src ColumnSource, out Bitmap) bool {
	if opDerived(c.Attr) {
		return batchOpCond(c, src, out)
	}
	col, ok := src.Int64Column(c.Attr)
	if !ok {
		return false
	}
	n := src.NumRows()
	switch c.Op {
	case CmpEq, CmpNe:
		// Eval compares the formatted column value against c.Val as
		// strings (modulo LIKE). Vectorize only the exact-integer case:
		// c.Val must be the canonical decimal rendering of some int64, so
		// string equality and integer equality coincide.
		if c.pattern != nil {
			return false
		}
		want, canonical := canonicalInt(c.Val)
		out.Reset()
		if !canonical {
			// No formatted int64 ever equals a non-canonical literal.
			if c.Op == CmpNe {
				out.SetAll(n)
			}
			return true
		}
		for i := 0; i < n; i++ {
			if (col[i] == want) == (c.Op == CmpEq) {
				out.Set(i)
			}
		}
		return true
	case CmpIn, CmpNotIn:
		want := make(map[int64]struct{}, len(c.Vals))
		for _, v := range c.Vals {
			iv, canonical := canonicalInt(v)
			if !canonical {
				// A wildcard or non-canonical member can still match via
				// LIKE / string rules; don't risk divergence.
				return false
			}
			want[iv] = struct{}{}
		}
		out.Reset()
		for i := 0; i < n; i++ {
			_, hit := want[col[i]]
			if hit == (c.Op == CmpIn) {
				out.Set(i)
			}
		}
		return true
	case CmpLt, CmpLe, CmpGt, CmpGe:
		if !c.numValOK {
			// Eval would fall back to lexical comparison of decimal
			// strings; not worth replicating.
			return false
		}
		out.Reset()
		for i := 0; i < n; i++ {
			// Eval parses the formatted value back through ParseFloat;
			// float64(col[i]) reproduces that rounding exactly.
			got := float64(col[i])
			var cmp int
			switch {
			case got < c.numVal:
				cmp = -1
			case got > c.numVal:
				cmp = 1
			}
			if orderedResult(c.Op, cmp) {
				out.Set(i)
			}
		}
		return true
	default:
		return false
	}
}

// batchOpCond vectorizes any condition over an op-derived attribute by
// precomputing the verdict per operation code — Eval on a synthetic event
// carrying just the op is exact for these attributes, whatever the
// comparison (LIKE patterns and IN lists included).
func batchOpCond(c *Cond, src ColumnSource, out Bitmap) bool {
	ops, ok := src.OpColumn()
	if !ok {
		return false
	}
	var lut [256]bool
	for o := 0; o < 256; o++ {
		ev := types.Event{Op: types.Op(o)}
		lut[o] = c.Eval(&ev)
	}
	n := src.NumRows()
	out.Reset()
	for i := 0; i < n; i++ {
		if lut[ops[i]] {
			out.Set(i)
		}
	}
	return true
}

// canonicalInt reports whether s is the canonical base-10 rendering of an
// int64 (so integer comparison agrees with string comparison against
// formatted column values), returning the value when it is.
func canonicalInt(s string) (int64, bool) {
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, false
	}
	if strconv.FormatInt(v, 10) != s {
		return 0, false
	}
	return v, true
}
