package pred

import (
	"encoding/json"
	"testing"

	"aiql/internal/types"
)

// roundTrip encodes, JSON-marshals, unmarshals and decodes a predicate —
// the exact path a data query takes from coordinator to worker.
func roundTrip(t *testing.T, p Pred) Pred {
	t.Helper()
	n, err := Encode(p)
	if err != nil {
		t.Fatalf("Encode(%v): %v", p, err)
	}
	raw, err := json.Marshal(n)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back *Node
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	got, err := Decode(back)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	return got
}

func TestWireRoundTrip(t *testing.T) {
	preds := []Pred{
		True,
		NewCond("exe_name", CmpEq, "%cmd.exe"),
		NewCond("amount", CmpGt, "4096"),
		NewCond("dst_port", CmpIn, "", "443", "8080"),
		&Not{X: NewCond("name", CmpEq, "/etc/passwd")},
		&And{Xs: []Pred{
			NewCond("exe_name", CmpEq, "%svchost%"),
			&Or{Xs: []Pred{NewCond("user", CmpEq, "root"), NewCond("pid", CmpLe, "100")}},
		}},
	}
	ent := &types.Entity{ID: 1, Type: types.EntityProcess, AgentID: 1, Attrs: map[string]string{
		"exe_name": "c:\\windows\\system32\\cmd.exe", "user": "root", "pid": "42",
	}}
	for _, p := range preds {
		got := roundTrip(t, p)
		if got.String() != p.String() {
			t.Errorf("round trip changed predicate: %q -> %q", p, got)
		}
		if got.Eval(ent) != p.Eval(ent) {
			t.Errorf("round trip changed evaluation of %q", p)
		}
		if got.ConstraintCount() != p.ConstraintCount() {
			t.Errorf("round trip changed constraint count of %q", p)
		}
	}
}

func TestWireRecompilesLikeAndNumbers(t *testing.T) {
	// The decoded side must rebuild the pre-compiled LIKE pattern and the
	// parsed numeric literal, not just the struct fields.
	like := roundTrip(t, NewCond("exe_name", CmpEq, "%chrome%"))
	ent := &types.Entity{Attrs: map[string]string{"exe_name": "/opt/chrome/chrome"}}
	if !like.Eval(ent) {
		t.Error("decoded LIKE predicate lost its wildcard pattern")
	}
	num := roundTrip(t, NewCond("amount", CmpGt, "100"))
	ev := &types.Event{Amount: 20}
	if num.Eval(ev) {
		t.Error("decoded numeric predicate compares lexically (20 > 100)")
	}
}

func TestWireNilAndErrors(t *testing.T) {
	if n, err := Encode(nil); err != nil || n != nil {
		t.Errorf("Encode(nil) = %v, %v; want nil, nil", n, err)
	}
	if p, err := Decode(nil); err != nil || p != nil {
		t.Errorf("Decode(nil) = %v, %v; want nil, nil", p, err)
	}
	for _, bad := range []*Node{
		{Kind: "nope"},
		{Kind: "cond", Op: "~"},
		{Kind: "not"},
		{Kind: "and", Kids: []*Node{nil}},
	} {
		if _, err := Decode(bad); err == nil {
			t.Errorf("Decode(%+v) should fail", bad)
		}
	}
}
