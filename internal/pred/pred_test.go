package pred

import (
	"strings"
	"testing"
	"testing/quick"

	"aiql/internal/types"
)

func fileEnt(name string) *types.Entity {
	return &types.Entity{ID: 1, Type: types.EntityFile, AgentID: 3,
		Attrs: map[string]string{types.AttrName: name, types.AttrOwner: "root"}}
}

func TestCondEquality(t *testing.T) {
	c := NewCond(types.AttrName, CmpEq, "/etc/passwd")
	if !c.Eval(fileEnt("/etc/passwd")) {
		t.Error("exact equality failed")
	}
	if c.Eval(fileEnt("/etc/shadow")) {
		t.Error("inequality matched")
	}
}

func TestCondLikePatterns(t *testing.T) {
	cases := []struct {
		pattern string
		value   string
		want    bool
	}{
		{"%cmd.exe", `C:\Windows\System32\cmd.exe`, true},
		{"%cmd.exe", `C:\Windows\System32\cmd.exe.bak`, false},
		{"/var/www%", "/var/www/html/index.html", true},
		{"/var/www%", "/srv/var/www/x", false},
		{"%telnet%", "/usr/bin/telnetd", true},
		{"%telnet%", "/usr/bin/ssh", false},
		{"%", "anything at all", true},
		{"%%", "x", true},
		{"a%b%c", "aXbYc", true},
		{"a%b%c", "abc", true},
		{"a%b%c", "acb", false},
		{"a%b%c", "aXbYcZ", false},
		{"abc", "abc", true},
		{"%etc%hosts", `C:\Windows\System32\drivers\etc\hosts`, true},
	}
	for _, tc := range cases {
		c := NewCond(types.AttrName, CmpEq, tc.pattern)
		got := c.Eval(fileEnt(tc.value))
		if got != tc.want {
			t.Errorf("LIKE %q against %q = %v, want %v", tc.pattern, tc.value, got, tc.want)
		}
		if LikeMatch(tc.pattern, tc.value) != tc.want {
			t.Errorf("LikeMatch(%q, %q) != %v", tc.pattern, tc.value, tc.want)
		}
	}
}

func TestLikeMatchSubstringAgreement(t *testing.T) {
	// Property: "%s%" behaves exactly like strings.Contains for
	// wildcard-free s.
	f := func(needle, hay string) bool {
		if strings.ContainsRune(needle, '%') {
			return true
		}
		return LikeMatch("%"+needle+"%", hay) == strings.Contains(hay, needle)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLikeMatchAnchors(t *testing.T) {
	f := func(prefix, hay string) bool {
		if strings.ContainsRune(prefix, '%') {
			return true
		}
		return LikeMatch(prefix+"%", hay) == strings.HasPrefix(hay, prefix) &&
			LikeMatch("%"+prefix, hay) == strings.HasSuffix(hay, prefix)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCondNumericComparison(t *testing.T) {
	ent := &types.Entity{Type: types.EntityNetwork,
		Attrs: map[string]string{types.AttrDstPort: "4444"}}
	if !NewCond(types.AttrDstPort, CmpEq, "4444").Eval(ent) {
		t.Error("numeric equality failed")
	}
	if !NewCond(types.AttrDstPort, CmpGt, "1000").Eval(ent) {
		t.Error("4444 > 1000 failed")
	}
	if NewCond(types.AttrDstPort, CmpLt, "1000").Eval(ent) {
		t.Error("4444 < 1000 matched")
	}
	if !NewCond(types.AttrDstPort, CmpGe, "4444").Eval(ent) {
		t.Error(">= failed at boundary")
	}
	if !NewCond(types.AttrDstPort, CmpLe, "4444").Eval(ent) {
		t.Error("<= failed at boundary")
	}
	// Numeric compare matters: "9" < "10" numerically but not lexically.
	low := &types.Entity{Type: types.EntityNetwork,
		Attrs: map[string]string{types.AttrDstPort: "9"}}
	if !NewCond(types.AttrDstPort, CmpLt, "10").Eval(low) {
		t.Error("numeric 9 < 10 failed (lexical comparison leaked through)")
	}
}

func TestCondLexicalFallback(t *testing.T) {
	ent := fileEnt("beta")
	if !NewCond(types.AttrName, CmpGt, "alpha").Eval(ent) {
		t.Error("lexical beta > alpha failed")
	}
	if NewCond(types.AttrName, CmpLt, "alpha").Eval(ent) {
		t.Error("lexical beta < alpha matched")
	}
}

func TestCondInList(t *testing.T) {
	c := NewCond(types.AttrName, CmpIn, "", "/a", "/b", "%tmp%")
	if !c.Eval(fileEnt("/a")) || !c.Eval(fileEnt("/b")) {
		t.Error("in-list exact values failed")
	}
	if !c.Eval(fileEnt("/var/tmp/x")) {
		t.Error("in-list wildcard member failed")
	}
	if c.Eval(fileEnt("/c")) {
		t.Error("non-member matched")
	}
	n := NewCond(types.AttrName, CmpNotIn, "", "/a")
	if n.Eval(fileEnt("/a")) || !n.Eval(fileEnt("/x")) {
		t.Error("not-in semantics wrong")
	}
}

func TestMissingAttribute(t *testing.T) {
	ent := fileEnt("/x")
	// Positive comparisons on missing attributes fail; negative ones hold.
	if NewCond("missing", CmpEq, "v").Eval(ent) {
		t.Error("= on missing attribute matched")
	}
	if !NewCond("missing", CmpNe, "v").Eval(ent) {
		t.Error("!= on missing attribute did not match")
	}
	if NewCond("missing", CmpIn, "", "v").Eval(ent) {
		t.Error("in on missing attribute matched")
	}
	if !NewCond("missing", CmpNotIn, "", "v").Eval(ent) {
		t.Error("not in on missing attribute did not match")
	}
	if NewCond("missing", CmpGt, "0").Eval(ent) {
		t.Error("> on missing attribute matched")
	}
}

func TestBooleanCombinators(t *testing.T) {
	a := NewCond(types.AttrName, CmpEq, "%passwd%")
	b := NewCond(types.AttrOwner, CmpEq, "root")
	ent := fileEnt("/etc/passwd")

	and := AndOf(a, b)
	if !and.Eval(ent) {
		t.Error("AND failed")
	}
	or := &Or{Xs: []Pred{NewCond(types.AttrName, CmpEq, "/nope"), b}}
	if !or.Eval(ent) {
		t.Error("OR failed")
	}
	not := &Not{X: a}
	if not.Eval(ent) {
		t.Error("NOT matched")
	}
	if !(&Not{X: NewCond(types.AttrName, CmpEq, "/nope")}).Eval(ent) {
		t.Error("NOT of false failed")
	}
}

func TestAndOfFlattens(t *testing.T) {
	a := NewCond("x", CmpEq, "1")
	b := NewCond("y", CmpEq, "2")
	c := NewCond("z", CmpEq, "3")
	nested := AndOf(AndOf(a, b), c)
	and, ok := nested.(*And)
	if !ok {
		t.Fatalf("AndOf did not produce *And: %T", nested)
	}
	if len(and.Xs) != 3 {
		t.Errorf("flattened AND has %d children, want 3", len(and.Xs))
	}
	if AndOf() != True {
		t.Error("empty AndOf should be True")
	}
	if AndOf(a) != a {
		t.Error("single AndOf should be identity")
	}
	if AndOf(nil, True, a) != a {
		t.Error("AndOf must drop nil and True")
	}
}

func TestConstraintCount(t *testing.T) {
	a := NewCond("x", CmpEq, "1")
	b := NewCond("y", CmpEq, "2")
	or := &Or{Xs: []Pred{a, b}}
	and := AndOf(a, or)
	if and.ConstraintCount() != 3 {
		t.Errorf("constraint count = %d, want 3", and.ConstraintCount())
	}
	if True.ConstraintCount() != 0 {
		t.Error("True should count 0 constraints")
	}
	if (&Not{X: or}).ConstraintCount() != 2 {
		t.Error("NOT should pass through its child's count")
	}
}

func TestIndexableKeys(t *testing.T) {
	exact := NewCond(types.AttrName, CmpEq, "/etc/passwd")
	wild := NewCond(types.AttrName, CmpEq, "%passwd%")
	inlist := NewCond(types.AttrOwner, CmpIn, "", "root", "admin")
	other := NewCond(types.AttrOwner, CmpGt, "a")

	keys := IndexableKeys(AndOf(exact, wild, inlist, other))
	if len(keys) != 2 {
		t.Fatalf("keys = %v, want 2 entries", keys)
	}
	if keys[0].Attr != types.AttrName || keys[0].Vals[0] != "/etc/passwd" {
		t.Errorf("first key = %+v", keys[0])
	}
	if keys[1].Attr != types.AttrOwner || len(keys[1].Vals) != 2 {
		t.Errorf("second key = %+v", keys[1])
	}

	// Disjunctions are not necessary conditions: nothing indexable.
	if got := IndexableKeys(&Or{Xs: []Pred{exact, inlist}}); len(got) != 0 {
		t.Errorf("Or produced index keys: %v", got)
	}
	// Negations are not indexable either.
	if got := IndexableKeys(&Not{X: exact}); len(got) != 0 {
		t.Errorf("Not produced index keys: %v", got)
	}
	// An in-list containing a wildcard is not exactly servable.
	wildIn := NewCond(types.AttrName, CmpIn, "", "/a", "%b%")
	if got := IndexableKeys(wildIn); len(got) != 0 {
		t.Errorf("wildcard in-list produced index keys: %v", got)
	}
}

// TestIndexKeysAreNecessary is the core index-correctness property: if the
// predicate accepts an entity, then for every mined index key the entity's
// attribute value is in the key's value set.
func TestIndexKeysAreNecessary(t *testing.T) {
	names := []string{"/a", "/b", "/c"}
	owners := []string{"root", "user"}
	preds := []Pred{
		AndOf(NewCond(types.AttrName, CmpEq, "/a"), NewCond(types.AttrOwner, CmpEq, "root")),
		AndOf(NewCond(types.AttrName, CmpIn, "", "/a", "/b")),
		AndOf(NewCond(types.AttrName, CmpEq, "/b"), &Or{Xs: []Pred{
			NewCond(types.AttrOwner, CmpEq, "root"), NewCond(types.AttrOwner, CmpEq, "user")}}),
	}
	for _, p := range preds {
		keys := IndexableKeys(p)
		for _, name := range names {
			for _, owner := range owners {
				e := &types.Entity{Type: types.EntityFile,
					Attrs: map[string]string{types.AttrName: name, types.AttrOwner: owner}}
				if !p.Eval(e) {
					continue
				}
				for _, k := range keys {
					v, _ := e.Attr(k.Attr)
					found := false
					for _, kv := range k.Vals {
						if kv == v {
							found = true
						}
					}
					if !found {
						t.Errorf("pred %s accepts %v but index key %v excludes it", p, e.Attrs, k)
					}
				}
			}
		}
	}
}

func TestPredStrings(t *testing.T) {
	c := NewCond(types.AttrName, CmpEq, "%x%")
	if !strings.Contains(c.String(), "name") {
		t.Errorf("Cond.String() = %q", c.String())
	}
	in := NewCond("a", CmpIn, "", "1", "2")
	if !strings.Contains(in.String(), "in (1, 2)") {
		t.Errorf("In.String() = %q", in.String())
	}
	notin := NewCond("a", CmpNotIn, "", "1")
	if !strings.Contains(notin.String(), "not in") {
		t.Errorf("NotIn.String() = %q", notin.String())
	}
	for _, op := range []CmpOp{CmpEq, CmpNe, CmpLt, CmpLe, CmpGt, CmpGe, CmpIn, CmpNotIn} {
		if op.String() == "?" {
			t.Errorf("operator %d has no string", op)
		}
	}
}

func TestEventPredicates(t *testing.T) {
	ev := &types.Event{Op: types.OpWrite, Amount: 1 << 20, FailCode: 0}
	big := NewCond(types.EvtAttrAmount, CmpGt, "1000000")
	if !big.Eval(ev) {
		t.Error("amount > 1000000 failed")
	}
	failed := NewCond(types.EvtAttrFailCode, CmpNe, "0")
	if failed.Eval(ev) {
		t.Error("failcode != 0 matched a successful event")
	}
	opIs := NewCond(types.EvtAttrOpType, CmpEq, "write")
	if !opIs.Eval(ev) {
		t.Error("optype = write failed")
	}
}
