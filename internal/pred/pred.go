// Package pred implements compiled boolean predicates over entity and event
// attributes. The AIQL parser produces attribute-constraint expression trees
// (Grammar 1 <attr_cstr>); the engine compiles them into Pred values that the
// storage engines evaluate during scans, and mines them for exact-match keys
// that can be served from hash indexes instead.
package pred

import (
	"fmt"
	"strconv"
	"strings"

	"aiql/internal/types"
)

// CmpOp enumerates the comparison operators of <cstr>.
type CmpOp uint8

const (
	CmpEq    CmpOp = iota // =, also LIKE when the value carries % wildcards
	CmpNe                 // !=
	CmpLt                 // <
	CmpLe                 // <=
	CmpGt                 // >
	CmpGe                 // >=
	CmpIn                 // in (v1, v2, ...)
	CmpNotIn              // not in (...)
)

// String renders the operator in AIQL syntax.
func (o CmpOp) String() string {
	switch o {
	case CmpEq:
		return "="
	case CmpNe:
		return "!="
	case CmpLt:
		return "<"
	case CmpLe:
		return "<="
	case CmpGt:
		return ">"
	case CmpGe:
		return ">="
	case CmpIn:
		return "in"
	case CmpNotIn:
		return "not in"
	default:
		return "?"
	}
}

// Attributed is any value exposing named string attributes; both
// *types.Entity and *types.Event satisfy it.
type Attributed interface {
	Attr(key string) (string, bool)
}

// Pred is a compiled predicate.
type Pred interface {
	// Eval reports whether the subject satisfies the predicate.
	Eval(a Attributed) bool
	// ConstraintCount returns the number of atomic constraints in the
	// predicate; the scheduler uses it to estimate pruning power.
	ConstraintCount() int
	// String renders the predicate in AIQL-like syntax.
	String() string
}

// True is the vacuous predicate matching everything.
var True Pred = truePred{}

type truePred struct{}

func (truePred) Eval(Attributed) bool { return true }
func (truePred) ConstraintCount() int { return 0 }
func (truePred) String() string       { return "true" }

// Cond is an atomic comparison: attr op value. Values are strings; when both
// sides parse as numbers the comparison is numeric, otherwise lexical.
// An equality whose value contains '%' is a SQL-LIKE style pattern match.
type Cond struct {
	Attr string
	Op   CmpOp
	Val  string
	Vals []string // for CmpIn / CmpNotIn

	// pattern is the pre-split LIKE pattern when Op is CmpEq/CmpNe and Val
	// contains wildcards; nil otherwise.
	pattern *likePattern
	// numVal caches the parsed numeric value for ordered comparisons.
	numVal   float64
	numValOK bool
}

// NewCond builds an atomic condition, pre-compiling LIKE patterns and
// numeric literals.
func NewCond(attr string, op CmpOp, val string, vals ...string) *Cond {
	c := &Cond{Attr: attr, Op: op, Val: val, Vals: vals}
	if (op == CmpEq || op == CmpNe) && strings.ContainsRune(val, '%') {
		c.pattern = compileLike(val)
	}
	if n, err := strconv.ParseFloat(val, 64); err == nil {
		c.numVal, c.numValOK = n, true
	}
	return c
}

// Eval implements Pred.
func (c *Cond) Eval(a Attributed) bool {
	got, ok := a.Attr(c.Attr)
	if !ok {
		// A missing attribute satisfies only negative comparisons.
		return c.Op == CmpNe || c.Op == CmpNotIn
	}
	switch c.Op {
	case CmpEq:
		return c.match(got)
	case CmpNe:
		return !c.match(got)
	case CmpIn:
		return c.inList(got)
	case CmpNotIn:
		return !c.inList(got)
	default:
		return c.ordered(got)
	}
}

func (c *Cond) match(got string) bool {
	if c.pattern != nil {
		return c.pattern.match(got)
	}
	return got == c.Val
}

func (c *Cond) inList(got string) bool {
	for _, v := range c.Vals {
		if strings.ContainsRune(v, '%') {
			if compileLike(v).match(got) {
				return true
			}
		} else if got == v {
			return true
		}
	}
	return false
}

func (c *Cond) ordered(got string) bool {
	var cmp int
	if c.numValOK {
		if gn, err := strconv.ParseFloat(got, 64); err == nil {
			switch {
			case gn < c.numVal:
				cmp = -1
			case gn > c.numVal:
				cmp = 1
			}
			return orderedResult(c.Op, cmp)
		}
	}
	cmp = strings.Compare(got, c.Val)
	return orderedResult(c.Op, cmp)
}

func orderedResult(op CmpOp, cmp int) bool {
	switch op {
	case CmpLt:
		return cmp < 0
	case CmpLe:
		return cmp <= 0
	case CmpGt:
		return cmp > 0
	case CmpGe:
		return cmp >= 0
	default:
		return false
	}
}

// ConstraintCount implements Pred.
func (c *Cond) ConstraintCount() int { return 1 }

// String implements Pred.
func (c *Cond) String() string {
	switch c.Op {
	case CmpIn, CmpNotIn:
		return fmt.Sprintf("%s %s (%s)", c.Attr, c.Op, strings.Join(c.Vals, ", "))
	default:
		return fmt.Sprintf("%s %s %q", c.Attr, c.Op, c.Val)
	}
}

// Not negates a predicate.
type Not struct{ X Pred }

// Eval implements Pred.
func (n *Not) Eval(a Attributed) bool { return !n.X.Eval(a) }

// ConstraintCount implements Pred.
func (n *Not) ConstraintCount() int { return n.X.ConstraintCount() }

// String implements Pred.
func (n *Not) String() string { return "!(" + n.X.String() + ")" }

// And is the conjunction of its children.
type And struct{ Xs []Pred }

// Eval implements Pred.
func (n *And) Eval(a Attributed) bool {
	for _, x := range n.Xs {
		if !x.Eval(a) {
			return false
		}
	}
	return true
}

// ConstraintCount implements Pred.
func (n *And) ConstraintCount() int {
	total := 0
	for _, x := range n.Xs {
		total += x.ConstraintCount()
	}
	return total
}

// String implements Pred.
func (n *And) String() string { return joinPreds(n.Xs, " && ") }

// Or is the disjunction of its children.
type Or struct{ Xs []Pred }

// Eval implements Pred.
func (n *Or) Eval(a Attributed) bool {
	for _, x := range n.Xs {
		if x.Eval(a) {
			return true
		}
	}
	return len(n.Xs) == 0
}

// ConstraintCount implements Pred.
func (n *Or) ConstraintCount() int {
	total := 0
	for _, x := range n.Xs {
		total += x.ConstraintCount()
	}
	return total
}

// String implements Pred.
func (n *Or) String() string { return joinPreds(n.Xs, " || ") }

func joinPreds(xs []Pred, sep string) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = x.String()
	}
	return "(" + strings.Join(parts, sep) + ")"
}

// AndOf conjoins predicates, flattening nested Ands and dropping True.
func AndOf(xs ...Pred) Pred {
	var flat []Pred
	for _, x := range xs {
		switch v := x.(type) {
		case nil:
		case truePred:
		case *And:
			flat = append(flat, v.Xs...)
		default:
			flat = append(flat, x)
		}
	}
	switch len(flat) {
	case 0:
		return True
	case 1:
		return flat[0]
	}
	return &And{Xs: flat}
}

// IndexKey is an exact attribute equality that a hash index can serve.
type IndexKey struct {
	Attr string
	Vals []string // any-of; a single value for plain equality
}

// IndexableKeys mines a predicate for equality constraints that are
// guaranteed necessary conditions of the whole predicate (i.e., appear at
// the top level of a conjunction and carry no wildcards). The storage layer
// uses the most selective one to replace a scan with an index probe.
func IndexableKeys(p Pred) []IndexKey {
	var keys []IndexKey
	collectKeys(p, &keys)
	return keys
}

func collectKeys(p Pred, out *[]IndexKey) {
	switch v := p.(type) {
	case *Cond:
		switch v.Op {
		case CmpEq:
			if v.pattern == nil {
				*out = append(*out, IndexKey{Attr: v.Attr, Vals: []string{v.Val}})
			}
		case CmpIn:
			for _, val := range v.Vals {
				if strings.ContainsRune(val, '%') {
					return
				}
			}
			*out = append(*out, IndexKey{Attr: v.Attr, Vals: v.Vals})
		}
	case *And:
		for _, x := range v.Xs {
			collectKeys(x, out)
		}
	}
}

// RequiredSubstrings mines a predicate for substrings that must appear in
// some attribute value of the subject whenever the predicate holds: the
// chunks of a top-level LIKE pattern and the values of top-level exact
// equalities, gathered across conjunctions. The result is a necessary
// condition only — an entity containing every substring may still fail the
// predicate — which is exactly the contract attribute zone maps need: a
// block whose entities provably lack a required substring cannot contain a
// match and may be skipped. Disjunctions, negations, IN lists and ordered
// comparisons contribute nothing (their satisfying values are not bounded
// below by any substring).
func RequiredSubstrings(p Pred) []string {
	var subs []string
	collectRequired(p, &subs)
	return subs
}

func collectRequired(p Pred, out *[]string) {
	switch v := p.(type) {
	case *Cond:
		if v.Op != CmpEq {
			return
		}
		if v.pattern != nil {
			*out = append(*out, v.pattern.chunks...)
			return
		}
		*out = append(*out, v.Val)
	case *And:
		for _, x := range v.Xs {
			collectRequired(x, out)
		}
	}
}

// likePattern implements SQL-LIKE matching restricted to the '%' wildcard,
// which is the only wildcard AIQL queries use.
type likePattern struct {
	chunks     []string
	leadAnchor bool // pattern does not start with %
	tailAnchor bool // pattern does not end with %
}

func compileLike(pat string) *likePattern {
	return &likePattern{
		chunks:     splitNonEmpty(pat, "%"),
		leadAnchor: !strings.HasPrefix(pat, "%"),
		tailAnchor: !strings.HasSuffix(pat, "%"),
	}
}

func splitNonEmpty(s, sep string) []string {
	var out []string
	for _, part := range strings.Split(s, sep) {
		if part != "" {
			out = append(out, part)
		}
	}
	return out
}

func (p *likePattern) match(s string) bool {
	if len(p.chunks) == 0 {
		// Pattern was only wildcards ("%", "%%"): matches anything.
		return true
	}
	rest := s
	for i, chunk := range p.chunks {
		var idx int
		if i == 0 && p.leadAnchor {
			if !strings.HasPrefix(rest, chunk) {
				return false
			}
			idx = 0
		} else {
			idx = strings.Index(rest, chunk)
			if idx < 0 {
				return false
			}
		}
		rest = rest[idx+len(chunk):]
	}
	if p.tailAnchor {
		// Last chunk must sit at the end of the string.
		last := p.chunks[len(p.chunks)-1]
		return strings.HasSuffix(s, last) && len(rest) == 0
	}
	return true
}

// LikeMatch reports whether s matches a SQL-LIKE pattern using '%' wildcards.
func LikeMatch(pattern, s string) bool { return compileLike(pattern).match(s) }

// Compile-time interface checks.
var (
	_ Pred       = (*Cond)(nil)
	_ Pred       = (*Not)(nil)
	_ Pred       = (*And)(nil)
	_ Pred       = (*Or)(nil)
	_ Attributed = (*types.Entity)(nil)
	_ Attributed = (*types.Event)(nil)
)
