package pred

import "fmt"

// Node is the JSON-serializable form of a predicate tree. The distributed
// query tier sends the engine's synthesized data queries — including the
// predicates constrained execution pushed into them — to remote worker
// shards, so compiled predicates need a wire form that decodes back into an
// equivalent Pred (LIKE patterns and numeric literals are recompiled by
// NewCond on the receiving side).
type Node struct {
	// Kind discriminates the tree node: "true", "cond", "not", "and", "or".
	Kind string `json:"kind"`
	// Cond payload (Kind == "cond").
	Attr string   `json:"attr,omitempty"`
	Op   string   `json:"op,omitempty"`
	Val  string   `json:"val,omitempty"`
	Vals []string `json:"vals,omitempty"`
	// Children (Kind == "not": exactly one; "and"/"or": any number).
	Kids []*Node `json:"kids,omitempty"`
}

// cmpOpNames mirrors CmpOp.String for the wire: names, not iota values, so
// a coordinator and a worker built from different revisions cannot silently
// disagree about operator numbering.
var cmpOpByName = map[string]CmpOp{
	"=": CmpEq, "!=": CmpNe, "<": CmpLt, "<=": CmpLe,
	">": CmpGt, ">=": CmpGe, "in": CmpIn, "not in": CmpNotIn,
}

// Encode converts a predicate into its wire form. A nil predicate encodes
// as nil (meaning "no constraint", distinct from the vacuous True).
func Encode(p Pred) (*Node, error) {
	switch v := p.(type) {
	case nil:
		return nil, nil
	case truePred:
		return &Node{Kind: "true"}, nil
	case *Cond:
		return &Node{Kind: "cond", Attr: v.Attr, Op: v.Op.String(), Val: v.Val, Vals: v.Vals}, nil
	case *Not:
		kid, err := Encode(v.X)
		if err != nil {
			return nil, err
		}
		return &Node{Kind: "not", Kids: []*Node{kid}}, nil
	case *And:
		kids, err := encodeAll(v.Xs)
		if err != nil {
			return nil, err
		}
		return &Node{Kind: "and", Kids: kids}, nil
	case *Or:
		kids, err := encodeAll(v.Xs)
		if err != nil {
			return nil, err
		}
		return &Node{Kind: "or", Kids: kids}, nil
	default:
		return nil, fmt.Errorf("pred: cannot encode %T", p)
	}
}

func encodeAll(xs []Pred) ([]*Node, error) {
	out := make([]*Node, len(xs))
	for i, x := range xs {
		n, err := Encode(x)
		if err != nil {
			return nil, err
		}
		out[i] = n
	}
	return out, nil
}

// Decode rebuilds a predicate from its wire form. A nil node decodes to a
// nil Pred.
func Decode(n *Node) (Pred, error) {
	if n == nil {
		return nil, nil
	}
	switch n.Kind {
	case "true":
		return True, nil
	case "cond":
		op, ok := cmpOpByName[n.Op]
		if !ok {
			return nil, fmt.Errorf("pred: unknown comparison operator %q", n.Op)
		}
		return NewCond(n.Attr, op, n.Val, n.Vals...), nil
	case "not":
		if len(n.Kids) != 1 {
			return nil, fmt.Errorf("pred: not-node needs exactly 1 child, got %d", len(n.Kids))
		}
		kid, err := Decode(n.Kids[0])
		if err != nil {
			return nil, err
		}
		if kid == nil {
			return nil, fmt.Errorf("pred: not-node with nil child")
		}
		return &Not{X: kid}, nil
	case "and", "or":
		kids := make([]Pred, len(n.Kids))
		for i, k := range n.Kids {
			kid, err := Decode(k)
			if err != nil {
				return nil, err
			}
			if kid == nil {
				return nil, fmt.Errorf("pred: %s-node with nil child", n.Kind)
			}
			kids[i] = kid
		}
		if n.Kind == "and" {
			return &And{Xs: kids}, nil
		}
		return &Or{Xs: kids}, nil
	default:
		return nil, fmt.Errorf("pred: unknown node kind %q", n.Kind)
	}
}
