package pred

import (
	"fmt"
	"math/rand"
	"testing"

	"aiql/internal/types"
)

// eventColumns adapts a slice of events to ColumnSource the same way the
// columnar storage path does, so the differential test exercises the exact
// contract BatchEval is specified against.
type eventColumns struct {
	evs []types.Event
}

func (s *eventColumns) NumRows() int { return len(s.evs) }

func (s *eventColumns) Int64Column(attr string) ([]int64, bool) {
	col := make([]int64, len(s.evs))
	for i := range s.evs {
		ev := &s.evs[i]
		switch attr {
		case types.EvtAttrAmount:
			col[i] = ev.Amount
		case types.EvtAttrFailCode:
			col[i] = int64(ev.FailCode)
		case types.EvtAttrSeq:
			col[i] = int64(ev.Seq)
		case types.EvtAttrStart:
			col[i] = ev.Start
		case types.EvtAttrEnd:
			col[i] = ev.End
		case types.AttrAgentID:
			col[i] = int64(ev.AgentID)
		case types.AttrID:
			col[i] = int64(ev.ID)
		default:
			return nil, false
		}
	}
	return col, true
}

func (s *eventColumns) OpColumn() ([]types.Op, bool) {
	ops := make([]types.Op, len(s.evs))
	for i := range s.evs {
		ops[i] = s.evs[i].Op
	}
	return ops, true
}

func randomEvents(rng *rand.Rand, n int) []types.Event {
	evs := make([]types.Event, n)
	for i := range evs {
		evs[i] = types.Event{
			ID:       types.EventID(rng.Intn(1 << 20)),
			AgentID:  rng.Intn(16),
			Op:       types.Op(1 + rng.Intn(types.NumOps)),
			Start:    1700000000000 + int64(rng.Intn(86400000)),
			Seq:      uint64(rng.Intn(1 << 16)),
			Amount:   int64(rng.Intn(1 << 14)),
			FailCode: rng.Intn(4),
		}
		evs[i].End = evs[i].Start + int64(rng.Intn(2000))
	}
	return evs
}

// randomPred builds a predicate from the comparison shapes the parser can
// produce, at the given nesting depth.
func randomPred(rng *rand.Rand, depth int) Pred {
	if depth > 0 && rng.Intn(2) == 0 {
		n := 1 + rng.Intn(3)
		kids := make([]Pred, n)
		for i := range kids {
			kids[i] = randomPred(rng, depth-1)
		}
		switch rng.Intn(3) {
		case 0:
			return &And{Xs: kids}
		case 1:
			return &Or{Xs: kids}
		default:
			return &Not{X: kids[0]}
		}
	}
	attrs := []string{
		types.EvtAttrAmount, types.EvtAttrFailCode, types.EvtAttrOpType,
		types.EvtAttrAccess, types.EvtAttrSeq, types.EvtAttrStart,
		types.AttrAgentID,
	}
	attr := attrs[rng.Intn(len(attrs))]
	switch attr {
	case types.EvtAttrOpType:
		vals := []string{"read", "write", "execute", "send", "re%", "%e", "%"}
		v := vals[rng.Intn(len(vals))]
		switch rng.Intn(3) {
		case 0:
			return NewCond(attr, CmpEq, v)
		case 1:
			return NewCond(attr, CmpNe, v)
		default:
			return NewCond(attr, CmpIn, "", "read", "write", v)
		}
	case types.EvtAttrAccess:
		v := []string{"r", "w", "x", "-"}[rng.Intn(4)]
		if rng.Intn(2) == 0 {
			return NewCond(attr, CmpEq, v)
		}
		return NewCond(attr, CmpNotIn, "", v, "w")
	default:
		var v string
		switch attr {
		case types.EvtAttrStart:
			v = fmt.Sprint(1700000000000 + int64(rng.Intn(86400000)))
		case types.AttrAgentID:
			v = fmt.Sprint(rng.Intn(16))
		case types.EvtAttrFailCode:
			v = fmt.Sprint(rng.Intn(4))
		default:
			v = fmt.Sprint(rng.Intn(1 << 14))
		}
		ops := []CmpOp{CmpEq, CmpNe, CmpLt, CmpLe, CmpGt, CmpGe, CmpIn, CmpNotIn}
		op := ops[rng.Intn(len(ops))]
		if op == CmpIn || op == CmpNotIn {
			return NewCond(attr, op, "", v, fmt.Sprint(rng.Intn(1<<14)))
		}
		return NewCond(attr, op, v)
	}
}

// TestBatchEvalMatchesEval is the differential harness: for random
// predicates over random event blocks, whenever BatchEval claims the
// predicate vectorizes, the resulting bitmap must agree with per-row Eval
// on every row.
func TestBatchEvalMatchesEval(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	vectorized := 0
	for trial := 0; trial < 500; trial++ {
		evs := randomEvents(rng, 1+rng.Intn(200))
		p := randomPred(rng, 2)
		src := &eventColumns{evs: evs}
		out := NewBitmap(len(evs))
		if !BatchEval(p, src, out) {
			continue
		}
		vectorized++
		for i := range evs {
			want := p.Eval(&evs[i])
			if got := out.Get(i); got != want {
				t.Fatalf("trial %d row %d: BatchEval=%v Eval=%v for %s on %+v",
					trial, i, got, want, p.String(), evs[i])
			}
		}
	}
	if vectorized < 100 {
		t.Fatalf("only %d/500 predicates vectorized; harness is not exercising the kernel", vectorized)
	}
}

// TestBatchEvalRefusesUnvectorizable pins the fallback contract: predicates
// whose semantics the kernel cannot reproduce bit-exactly must be refused,
// not approximated.
func TestBatchEvalRefusesUnvectorizable(t *testing.T) {
	evs := randomEvents(rand.New(rand.NewSource(7)), 8)
	src := &eventColumns{evs: evs}
	out := NewBitmap(len(evs))
	cases := []struct {
		name string
		p    Pred
	}{
		{"unknown attribute", NewCond("exe_name", CmpEq, "bash")},
		{"like on numeric column", NewCond(types.EvtAttrAmount, CmpEq, "40%")},
		{"wildcard in numeric IN list", NewCond(types.EvtAttrAmount, CmpIn, "", "1%", "2")},
		{"non-numeric ordered literal", NewCond(types.EvtAttrAmount, CmpGt, "abc")},
		{"nested unvectorizable", &And{Xs: []Pred{True, NewCond("cmd", CmpEq, "x")}}},
	}
	for _, tc := range cases {
		if BatchEval(tc.p, src, out) {
			t.Errorf("%s: expected refusal, got vectorized", tc.name)
		}
	}
}

// TestBatchEvalVacuous covers the constant edges: nil and True select all
// rows, an empty Or matches Eval's everything-matches behaviour, and a
// non-canonical equality literal matches nothing (Ne: everything).
func TestBatchEvalVacuous(t *testing.T) {
	evs := randomEvents(rand.New(rand.NewSource(11)), 70)
	src := &eventColumns{evs: evs}
	n := len(evs)
	out := NewBitmap(n)
	for _, p := range []Pred{nil, True, &Or{}} {
		if !BatchEval(p, src, out) {
			t.Fatalf("constant predicate refused")
		}
		if out.Count(n) != n {
			t.Fatalf("constant predicate selected %d/%d", out.Count(n), n)
		}
	}
	if !BatchEval(NewCond(types.EvtAttrAmount, CmpEq, "007"), src, out) {
		t.Fatal("non-canonical Eq refused")
	}
	if out.Count(n) != 0 {
		t.Fatal("non-canonical Eq selected rows")
	}
	if !BatchEval(NewCond(types.EvtAttrAmount, CmpNe, "007"), src, out) {
		t.Fatal("non-canonical Ne refused")
	}
	if out.Count(n) != n {
		t.Fatal("non-canonical Ne dropped rows")
	}
}

// TestBitmapOps exercises the word-boundary arithmetic of the bitmap
// helpers at sizes around multiples of 64.
func TestBitmapOps(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 127, 128, 200} {
		b := NewBitmap(n)
		b.SetAll(n)
		if b.Count(n) != n {
			t.Fatalf("n=%d: SetAll count %d", n, b.Count(n))
		}
		b.Not(n)
		if b.Count(n) != 0 {
			t.Fatalf("n=%d: Not(all) count %d", n, b.Count(n))
		}
		for i := 0; i < n; i += 3 {
			b.Set(i)
		}
		var visited []int
		b.ForEach(n, func(i int) bool { visited = append(visited, i); return true })
		if len(visited) != b.Count(n) {
			t.Fatalf("n=%d: ForEach visited %d, count %d", n, len(visited), b.Count(n))
		}
		for k, i := range visited {
			if i%3 != 0 || (k > 0 && visited[k-1] >= i) {
				t.Fatalf("n=%d: bad visit order %v", n, visited)
			}
		}
		stopped := 0
		b.ForEach(n, func(i int) bool { stopped++; return stopped < 2 })
		if n >= 6 && stopped != 2 {
			t.Fatalf("n=%d: early stop visited %d", n, stopped)
		}
	}
}
