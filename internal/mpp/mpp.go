// Package mpp emulates the paper's Greenplum deployment: an MPP database of
// N segment nodes, each holding a shard of the event data and scanned in
// parallel (paper Sec. 3.2 "Hypertable" and Sec. 6.3.3).
//
// The experiment in paper Fig. 7 varies two things at once: the placement
// policy — Greenplum's default distributes events by arrival order, which
// is arbitrary, while AIQL's semantics-aware model distributes by the
// (agent, day) spatial/temporal key — and the scheduling (Greenplum runs
// the one-big-join SQL, AIQL runs Algorithm 1 on top). This package
// provides both placements over identical segment stores; the bench
// harness pairs them with the corresponding engine strategies.
package mpp

import (
	"context"
	"sync"
	"sync/atomic"

	"aiql/internal/obs"
	"aiql/internal/storage"
	"aiql/internal/types"
)

// Placement selects the event distribution policy.
type Placement uint8

const (
	// ArrivalOrder round-robins events across segments in ingest order —
	// Greenplum's default, arbitrary with respect to query semantics.
	ArrivalOrder Placement = iota
	// SemanticsAware hashes events by (agent, day), AIQL's data model, so
	// each segment holds whole spatial/temporal partitions and spatial or
	// temporal constraints eliminate entire segments.
	SemanticsAware
)

func (p Placement) String() string {
	if p == ArrivalOrder {
		return "arrival-order"
	}
	return "semantics-aware"
}

// Cluster is a set of segment stores behind a scatter/gather Run.
type Cluster struct {
	placement Placement
	segs      []*storage.Store

	scans              atomic.Uint64
	segmentsScanned    atomic.Uint64
	segmentsEliminated atomic.Uint64
}

// Stats is the cluster's partition-elimination accounting: how many
// scatter/gather scans ran, how many segment nodes they touched versus
// proved empty by placement, and the block-level zone-map counters
// aggregated across every segment's local store.
type Stats struct {
	Scans              uint64            `json:"scans"`
	SegmentsScanned    uint64            `json:"segments_scanned"`
	SegmentsEliminated uint64            `json:"segments_eliminated"`
	Scan               storage.ScanStats `json:"scan"`
}

// Stats returns the cluster's cumulative elimination counters.
func (c *Cluster) Stats() Stats {
	st := Stats{
		Scans:              c.scans.Load(),
		SegmentsScanned:    c.segmentsScanned.Load(),
		SegmentsEliminated: c.segmentsEliminated.Load(),
	}
	for _, s := range c.segs {
		ss := s.ScanStats()
		st.Scan.BlocksConsidered += ss.BlocksConsidered
		st.Scan.BlocksSkipped += ss.BlocksSkipped
		st.Scan.BlocksDecoded += ss.BlocksDecoded
		st.Scan.Thaws += ss.Thaws
		st.Scan.HotBatches += ss.HotBatches
		st.Scan.DictVerdictHits += ss.DictVerdictHits
		st.Scan.AttrZoneSkips += ss.AttrZoneSkips
		st.Scan.CompressedBytesRead += ss.CompressedBytesRead
		st.Scan.CompressedBytesDecode += ss.CompressedBytesDecode
	}
	return st
}

// New creates a cluster of n segments (the paper's deployment used 5).
func New(n int, placement Placement, segOpts storage.Options) *Cluster {
	if n <= 0 {
		n = 5
	}
	c := &Cluster{placement: placement}
	for i := 0; i < n; i++ {
		c.segs = append(c.segs, storage.New(segOpts))
	}
	return c
}

// Segments returns the number of segment nodes.
func (c *Cluster) Segments() int { return len(c.segs) }

// Placement returns the cluster's distribution policy.
func (c *Cluster) Placement() Placement { return c.placement }

// Ingest distributes a dataset across the segments. Entities are
// dimension-table-like and replicated to every segment, matching how MPP
// systems broadcast small dimension tables.
func (c *Cluster) Ingest(d *types.Dataset) {
	shards := c.placement.Scatter(d.Events, len(c.segs), 0)
	var wg sync.WaitGroup
	for i := range c.segs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c.segs[i].Ingest(types.NewDataset(d.Entities, shards[i]))
		}(i)
	}
	wg.Wait()
}

// EventCount returns the total number of events across segments.
func (c *Cluster) EventCount() int {
	total := 0
	for _, s := range c.segs {
		total += s.EventCount()
	}
	return total
}

// Scan implements the engine Backend: the data query is scattered to the
// candidate segments and the partial streams gathered in segment order.
// Each segment scan snapshots its local store and spawns its own partition
// producers, so all segments search in parallel from the moment Scan
// returns, with bounded channels applying backpressure until the consumer
// reaches them. Under SemanticsAware placement, segments that the query's
// spatial/temporal constraints prove empty (Placement.Shards) are never
// scanned at all, and the surviving segments prune their local partitions
// further; under ArrivalOrder every segment holds a slice of every
// partition and must search.
func (c *Cluster) Scan(ctx context.Context, q *storage.DataQuery) storage.Cursor {
	targets := c.placement.Targets(len(c.segs), q)
	c.scans.Add(1)
	c.segmentsScanned.Add(uint64(len(targets)))
	c.segmentsEliminated.Add(uint64(len(c.segs) - len(targets)))
	// Segment elimination lands on the request's scan span; the per-segment
	// stores fold their block counters into the same span via ctx.
	if span := obs.SpanFromContext(ctx); span != nil {
		span.Add("segments_scanned", int64(len(targets)))
		span.Add("segments_eliminated", int64(len(c.segs)-len(targets)))
	}
	cs := make([]storage.Cursor, len(targets))
	for i, seg := range targets {
		cs[i] = c.segs[seg].Scan(ctx, q)
	}
	return storage.NewMultiCursor(q.Limit, cs...)
}

// Run is the materializing adapter over Scan. Canceling ctx aborts the
// per-segment scans between batches.
func (c *Cluster) Run(ctx context.Context, q *storage.DataQuery) []storage.Match {
	cur := c.Scan(ctx, q)
	defer cur.Close()
	return storage.Drain(cur)
}
