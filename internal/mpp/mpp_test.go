package mpp

import (
	"context"
	"sort"
	"testing"

	"aiql/internal/gen"
	"aiql/internal/pred"
	"aiql/internal/storage"
	"aiql/internal/timeutil"
	"aiql/internal/types"
)

func smallDataset() *types.Dataset {
	return gen.Scenario(gen.Config{Hosts: 10, Days: 3, BackgroundPerHostDay: 400, Seed: 9})
}

func TestIngestDistributesEverything(t *testing.T) {
	ds := smallDataset()
	for _, placement := range []Placement{ArrivalOrder, SemanticsAware} {
		c := New(5, placement, storage.Options{})
		c.Ingest(ds)
		if c.EventCount() != len(ds.Events) {
			t.Errorf("%v: cluster holds %d events, want %d", placement, c.EventCount(), len(ds.Events))
		}
		if c.Segments() != 5 {
			t.Errorf("segments = %d", c.Segments())
		}
	}
}

func TestDefaultSegments(t *testing.T) {
	if New(0, ArrivalOrder, storage.Options{}).Segments() != 5 {
		t.Error("default segment count should be 5 (paper deployment)")
	}
}

// TestPlacementsAgree: both placements must answer every query identically;
// only cost may differ.
func TestPlacementsAgree(t *testing.T) {
	ds := smallDataset()
	arrival := New(5, ArrivalOrder, storage.Options{})
	arrival.Ingest(ds)
	semantic := New(5, SemanticsAware, storage.Options{})
	semantic.Ingest(ds)
	single := storage.New(storage.Options{})
	single.Ingest(ds)

	queries := []*storage.DataQuery{
		{SubjType: types.EntityProcess, ObjType: types.EntityFile, Ops: types.NewOpSet(types.OpWrite)},
		{Agents: []int{gen.AgentDBServer}, SubjType: types.EntityProcess, Ops: types.AllOps()},
		{Window: timeutil.Window{From: gen.DayStart(1), To: gen.DayStart(2)},
			SubjType: types.EntityProcess,
			ObjPred:  pred.NewCond(types.AttrName, pred.CmpEq, "%backup1.dmp"),
			ObjType:  types.EntityFile,
			Ops:      types.AllOps()},
	}
	for i, q := range queries {
		a := ids(arrival.Run(context.Background(), q))
		b := ids(semantic.Run(context.Background(), q))
		c := ids(single.Run(context.Background(), q))
		if !equal(a, c) {
			t.Errorf("query %d: arrival-order differs from single store (%d vs %d)", i, len(a), len(c))
		}
		if !equal(b, c) {
			t.Errorf("query %d: semantics-aware differs from single store (%d vs %d)", i, len(b), len(c))
		}
	}
}

// TestSemanticsAwarePlacementLocality: with (agent, day) hashing, all
// events of one (agent, day) land on one segment.
func TestSemanticsAwarePlacementLocality(t *testing.T) {
	ds := smallDataset()
	c := New(5, SemanticsAware, storage.Options{})
	c.Ingest(ds)
	for agent := 1; agent <= 3; agent++ {
		for day := 0; day < 3; day++ {
			q := &storage.DataQuery{
				Agents:   []int{agent},
				Window:   timeutil.DayWindow(timeutil.DayIndex(gen.DayStart(day))),
				SubjType: types.EntityProcess,
				Ops:      types.AllOps(),
			}
			withData := 0
			for _, seg := range c.segs {
				if len(seg.Run(context.Background(), q)) > 0 {
					withData++
				}
			}
			if withData > 1 {
				t.Errorf("agent %d day %d spread across %d segments under semantics-aware placement",
					agent, day, withData)
			}
		}
	}
}

// TestArrivalOrderScatters: round-robin placement spreads one (agent, day)
// across essentially every segment — the paper's "arbitrary" distribution.
func TestArrivalOrderScatters(t *testing.T) {
	ds := smallDataset()
	c := New(5, ArrivalOrder, storage.Options{})
	c.Ingest(ds)
	q := &storage.DataQuery{
		Agents:   []int{1},
		Window:   timeutil.DayWindow(timeutil.DayIndex(gen.DayStart(0))),
		SubjType: types.EntityProcess,
		Ops:      types.AllOps(),
	}
	withData := 0
	for _, seg := range c.segs {
		if len(seg.Run(context.Background(), q)) > 0 {
			withData++
		}
	}
	if withData < 2 {
		t.Errorf("arrival-order placement kept agent 1 day 0 on %d segment(s)", withData)
	}
}

// TestStatsCountSegmentElimination: a spatially and temporally constrained
// query under semantics-aware placement must show eliminated segments in
// the cluster counters, while arrival-order placement (no content-derived
// home shard) can never eliminate any.
func TestStatsCountSegmentElimination(t *testing.T) {
	ds := smallDataset()
	q := &storage.DataQuery{
		Agents:   []int{1},
		Window:   timeutil.DayWindow(timeutil.DayIndex(gen.DayStart(0))),
		SubjType: types.EntityProcess,
		Ops:      types.AllOps(),
	}

	semantic := New(5, SemanticsAware, storage.Options{})
	semantic.Ingest(ds)
	semantic.Run(context.Background(), q)
	st := semantic.Stats()
	if st.Scans != 1 {
		t.Fatalf("scans = %d, want 1", st.Scans)
	}
	if st.SegmentsEliminated == 0 {
		t.Error("single (agent, day) query eliminated no segments under semantics-aware placement")
	}
	if st.SegmentsScanned+st.SegmentsEliminated != 5 {
		t.Errorf("scanned %d + eliminated %d != 5 segments", st.SegmentsScanned, st.SegmentsEliminated)
	}

	arrival := New(5, ArrivalOrder, storage.Options{})
	arrival.Ingest(ds)
	arrival.Run(context.Background(), q)
	if st := arrival.Stats(); st.SegmentsEliminated != 0 || st.SegmentsScanned != 5 {
		t.Errorf("arrival-order scanned %d, eliminated %d; want 5 scanned, 0 eliminated",
			st.SegmentsScanned, st.SegmentsEliminated)
	}
}

func ids(ms []storage.Match) []types.EventID {
	out := make([]types.EventID, len(ms))
	for i, m := range ms {
		out[i] = m.Event.ID
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equal(a, b []types.EventID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
