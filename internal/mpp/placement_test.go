package mpp

import (
	"context"
	"testing"

	"aiql/internal/gen"
	"aiql/internal/storage"
	"aiql/internal/timeutil"
)

func dayWindow(day int) timeutil.Window {
	return timeutil.Window{From: gen.DayStart(day), To: gen.DayStart(day + 1)}
}

func TestShardMatchesIngestPlacement(t *testing.T) {
	ds := gen.Scenario(gen.Config{Hosts: 10, Days: 3, BackgroundPerHostDay: 200, Seed: 7})
	const n = 4
	c := New(n, SemanticsAware, storage.Options{})
	c.Ingest(ds)
	// Every event must land on exactly the shard the placement function
	// names for its (agent, day) — the invariant worker pruning relies on.
	want := make([]int, n)
	for i := range ds.Events {
		ev := &ds.Events[i]
		want[SemanticsAware.Shard(ev.AgentID, timeutil.DayIndex(ev.Start), n)]++
	}
	for i, seg := range c.segs {
		if seg.EventCount() != want[i] {
			t.Fatalf("segment %d holds %d events, placement function assigns %d", i, seg.EventCount(), want[i])
		}
	}
}

func TestShardsElimination(t *testing.T) {
	const n = 5
	day := timeutil.DayIndex(gen.DayStart(1))

	// Fully constrained: exactly the one home shard survives.
	q := &storage.DataQuery{Agents: []int{3}, Window: dayWindow(1)}
	got := SemanticsAware.Shards(n, q)
	if len(got) != 1 || got[0] != SemanticsAware.Shard(3, day, n) {
		t.Fatalf("Shards(%v) = %v, want exactly the home shard %d", q, got, SemanticsAware.Shard(3, day, n))
	}

	// Missing either dimension: no elimination possible.
	if got := SemanticsAware.Shards(n, &storage.DataQuery{Agents: []int{3}}); got != nil {
		t.Fatalf("unbounded window should not eliminate shards, got %v", got)
	}
	if got := SemanticsAware.Shards(n, &storage.DataQuery{Window: dayWindow(1)}); got != nil {
		t.Fatalf("unconstrained agents should not eliminate shards, got %v", got)
	}

	// Arrival order never eliminates.
	if got := ArrivalOrder.Shards(n, q); got != nil {
		t.Fatalf("arrival order should not eliminate shards, got %v", got)
	}

	// A huge window falls back to all shards instead of enumerating days.
	huge := &storage.DataQuery{Agents: []int{3}, Window: timeutil.Window{From: 1, To: int64(1) << 62}}
	if got := SemanticsAware.Shards(n, huge); got != nil {
		t.Fatalf("half-unbounded window should fall back to all shards, got %v", got)
	}

	// Enough (agent, day) combinations cover every shard: nil again.
	wide := &storage.DataQuery{Agents: []int{1, 2, 3, 4, 5, 6, 7, 8}, Window: timeutil.Window{From: gen.DayStart(0), To: gen.DayStart(3)}}
	if got := SemanticsAware.Shards(n, wide); got != nil {
		t.Fatalf("covering query should return nil (all shards), got %v", got)
	}
}

func TestClusterScanSkipsEliminatedSegments(t *testing.T) {
	ds := gen.Scenario(gen.Config{Hosts: 10, Days: 3, BackgroundPerHostDay: 300, Seed: 3})
	c := New(5, SemanticsAware, storage.Options{})
	c.Ingest(ds)
	single := storage.New(storage.Options{})
	single.Ingest(ds)

	q := &storage.DataQuery{Agents: []int{gen.AgentWinClient}, Window: dayWindow(1)}
	want := single.Run(context.Background(), q)
	got := c.Run(context.Background(), q)
	if len(got) != len(want) {
		t.Fatalf("pruned cluster scan returned %d matches, single store %d", len(got), len(want))
	}
}

// TestPreEpochPlacementAgreement: shard assignment (Scatter) and query-side
// shard selection (Shards) must agree for pre-epoch events. Truncating day
// division mapped t=-1 and t=+1 to the same day for placement while window
// pruning computed different day ranges, stranding events on shards the
// coordinator never asked.
func TestPreEpochPlacementAgreement(t *testing.T) {
	const n = 4
	events := []struct {
		agent int
		start int64
	}{
		{1, -1}, {1, 0}, {2, -timeutil.DayMillis}, {3, -timeutil.DayMillis - 1}, {3, timeutil.DayMillis},
	}
	for _, e := range events {
		day := timeutil.DayIndex(e.start)
		home := SemanticsAware.Shard(e.agent, day, n)
		if home < 0 || home >= n {
			t.Fatalf("Shard(%d, %d, %d) = %d out of range", e.agent, day, n, home)
		}
		// The shard set for the event's own day-window must include its
		// home shard.
		q := &storage.DataQuery{Agents: []int{e.agent}, Window: timeutil.DayWindow(day)}
		shards := SemanticsAware.Shards(n, q)
		found := shards == nil
		for _, s := range shards {
			if s == home {
				found = true
			}
		}
		if !found {
			t.Fatalf("event (agent=%d t=%d day=%d): home shard %d not in query shard set %v", e.agent, e.start, day, home, shards)
		}
	}

	// An empty window selects no shards at all.
	if got := SemanticsAware.Shards(n, &storage.DataQuery{Agents: []int{1}, Window: timeutil.Window{From: 5, To: 0}}); got == nil || len(got) != 0 {
		t.Fatalf("empty window shard set = %v, want empty non-nil", got)
	}
}

func TestReplicaPlacement(t *testing.T) {
	// Ring successor: the replica of a shard is the next worker, wrapping.
	for n := 2; n <= 5; n++ {
		for shard := 0; shard < n; shard++ {
			got := SemanticsAware.Replica(shard, n)
			want := (shard + 1) % n
			if got != want {
				t.Fatalf("Replica(%d, %d) = %d, want %d", shard, n, got, want)
			}
			if got == shard {
				t.Fatalf("Replica(%d, %d) placed the copy on its own primary", shard, n)
			}
		}
	}
	// Meaningless cases return -1: arrival-order placement has no home
	// shard to replicate; a single worker has nowhere to put a copy;
	// out-of-range shards are not placements.
	cases := []struct {
		p        Placement
		shard, n int
	}{
		{ArrivalOrder, 0, 3},
		{SemanticsAware, 0, 1},
		{SemanticsAware, 0, 0},
		{SemanticsAware, -1, 3},
		{SemanticsAware, 3, 3},
	}
	for _, c := range cases {
		if got := c.p.Replica(c.shard, c.n); got != -1 {
			t.Fatalf("Replica(%d, %d) under placement %v = %d, want -1", c.shard, c.n, c.p, got)
		}
	}
}
