package mpp

import (
	"sort"

	"aiql/internal/storage"
	"aiql/internal/timeutil"
	"aiql/internal/types"
)

// Shard returns the shard index (0..n-1) that holds events of the given
// (agent, day) under this placement. It is the single definition of the
// data-distribution function: the in-process Cluster, the networked
// coordinator's scatter ingest, and the coordinator's worker pruning all
// call it, so placement and pruning can never disagree.
//
// ArrivalOrder has no content-derived home shard; Shard returns -1 and
// callers round-robin instead.
func (p Placement) Shard(agentID, day, n int) int {
	if p == ArrivalOrder || n <= 0 {
		return -1
	}
	seg := (agentID*31 + day) % n
	if seg < 0 {
		seg += n
	}
	return seg
}

// Replica returns the worker index holding the replica copy of a logical
// shard under R=2 replication: the next worker in ring order. It is the
// single definition of replica placement — the coordinator's dual-write
// ingest, the scan failover order, and a recovering worker's catch-up peer
// selection all derive from it, so the two copy holders of a shard can
// never disagree. Meaningless (-1) under ArrivalOrder, which has no
// content-derived home shard to replicate, or with fewer than two workers.
func (p Placement) Replica(shard, n int) int {
	if p == ArrivalOrder || n < 2 || shard < 0 || shard >= n {
		return -1
	}
	return (shard + 1) % n
}

// Scatter splits events into n shard slices: each event goes to its home
// shard (Shard), or round-robin when the placement has none
// (ArrivalOrder). The in-process Cluster and the networked coordinator
// both ingest through this one function, so the fallback convention can
// never diverge between them.
//
// offset rotates where the round-robin starts. A caller ingesting one
// batch passes 0; a caller ingesting a stream of batches passes its
// running event count, otherwise every small batch would restart at shard
// 0 and pile streamed events onto one node. Home-shard placement ignores
// it.
func (p Placement) Scatter(events []types.Event, n int, offset uint64) [][]types.Event {
	shards := make([][]types.Event, n)
	for i := range events {
		ev := &events[i]
		seg := p.Shard(ev.AgentID, timeutil.DayIndex(ev.Start), n)
		if seg < 0 {
			seg = int((offset + uint64(i)) % uint64(n))
		}
		shards[seg] = append(shards[seg], *ev)
	}
	return shards
}

// maxPruneDays bounds the day enumeration when translating a temporal
// constraint into shard indexes. Half-unbounded pushdown windows span ~1e13
// days; enumerating them would be slower than just asking every shard, and
// past a year of days the shard set is all of them anyway.
const maxPruneDays = 366

// Shards returns the sorted shard indexes that can hold events matching q
// under this placement across n shards, or nil meaning "all shards must be
// asked". Elimination requires both a spatial constraint (q.Agents) and a
// bounded temporal one (q.Window): the shard of an event is a function of
// its (agent, day), so an unconstrained dimension makes every shard a
// candidate. This is the same segment-elimination logic the local store
// applies per partition, lifted to whole shards.
func (p Placement) Shards(n int, q *storage.DataQuery) []int {
	if p == ArrivalOrder || n <= 0 {
		return nil
	}
	if q.Window.Empty() {
		// An empty window matches no event anywhere; DayIndex(To-1) on it
		// would invent a day range. Non-nil and empty: no shard qualifies.
		return []int{}
	}
	if len(q.Agents) == 0 || q.Window.Unbounded() {
		return nil
	}
	minDay := timeutil.DayIndex(q.Window.From)
	maxDay := timeutil.DayIndex(q.Window.To - 1)
	if maxDay < minDay || maxDay-minDay >= maxPruneDays {
		return nil
	}
	set := make(map[int]struct{})
	for _, agent := range q.Agents {
		for day := minDay; day <= maxDay; day++ {
			set[p.Shard(agent, day, n)] = struct{}{}
			if len(set) == n {
				return nil // every shard is a candidate; no elimination
			}
		}
	}
	out := make([]int, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// Targets resolves Shards' nil-means-all convention into a concrete shard
// list: the scatter paths of both cluster tiers call this one helper, so
// "which shards does this query touch" has a single definition.
func (p Placement) Targets(n int, q *storage.DataQuery) []int {
	if targets := p.Shards(n, q); targets != nil {
		return targets
	}
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	return all
}
