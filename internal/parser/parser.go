// Package parser implements a recursive-descent parser for AIQL
// (paper Grammar 1). It produces ast.Query values and reports errors with
// source positions, standing in for the ANTLR 4 grammar the paper used.
package parser

import (
	"fmt"
	"strings"

	"aiql/internal/ast"
	"aiql/internal/lexer"
	"aiql/internal/timeutil"
	"aiql/internal/types"
)

// Error is a parse error carrying a source position.
type Error struct {
	Pos ast.Pos
	Msg string
}

func (e *Error) Error() string {
	return fmt.Sprintf("aiql:%d:%d: %s", e.Pos.Line, e.Pos.Col, e.Msg)
}

// reserved words that can never serve as entity/event identifiers.
var reserved = map[string]bool{
	"proc": true, "file": true, "ip": true, "process": true, "network": true,
	"as": true, "with": true, "return": true, "group": true, "by": true,
	"having": true, "sort": true, "top": true, "before": true, "after": true,
	"within": true, "from": true, "to": true, "at": true, "window": true,
	"step": true, "forward": true, "backward": true, "count": true,
	"distinct": true, "in": true, "not": true, "asc": true, "desc": true,
}

func isReserved(s string) bool {
	if reserved[strings.ToLower(s)] {
		return true
	}
	_, isOp := types.ParseOp(s)
	return isOp
}

func isEntityType(s string) bool {
	_, ok := types.ParseEntityType(s)
	return ok
}

// Parse parses one AIQL query.
func Parse(src string) (*ast.Query, error) {
	toks, err := lexer.Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if !p.at(lexer.EOF) {
		return nil, p.errHere("unexpected %s after end of query", p.cur().Kind)
	}
	return q, nil
}

// MustParse parses a query and panics on error; intended for the embedded
// evaluation query corpus and tests.
func MustParse(src string) *ast.Query {
	q, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return q
}

type parser struct {
	toks []lexer.Token
	pos  int
	src  string
}

func (p *parser) cur() lexer.Token { return p.toks[p.pos] }
func (p *parser) peek() lexer.Token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *parser) at(k lexer.Kind) bool { return p.cur().Kind == k }

func (p *parser) atKw(kw string) bool { return p.cur().Is(kw) }

func (p *parser) advance() lexer.Token {
	t := p.cur()
	if t.Kind != lexer.EOF {
		p.pos++
	}
	return t
}

func (p *parser) accept(k lexer.Kind) (lexer.Token, bool) {
	if p.at(k) {
		return p.advance(), true
	}
	return lexer.Token{}, false
}

func (p *parser) acceptKw(kw string) bool {
	if p.atKw(kw) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expect(k lexer.Kind) (lexer.Token, error) {
	if p.at(k) {
		return p.advance(), nil
	}
	return lexer.Token{}, p.errHere("expected %s, found %s %q", k, p.cur().Kind, p.cur().Text)
}

func (p *parser) expectKw(kw string) error {
	if p.acceptKw(kw) {
		return nil
	}
	return p.errHere("expected %q, found %q", kw, p.cur().Text)
}

func (p *parser) posOf(t lexer.Token) ast.Pos { return ast.Pos{Line: t.Line, Col: t.Col} }

func (p *parser) errHere(format string, args ...any) error {
	t := p.cur()
	return &Error{Pos: ast.Pos{Line: t.Line, Col: t.Col}, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) errAt(t lexer.Token, format string, args ...any) error {
	return &Error{Pos: ast.Pos{Line: t.Line, Col: t.Col}, Msg: fmt.Sprintf(format, args...)}
}

// parseQuery ::= (global_cstr)* (multievent | dependency)
func (p *parser) parseQuery() (*ast.Query, error) {
	q := &ast.Query{Source: p.src}
	globals, err := p.parseGlobals()
	if err != nil {
		return nil, err
	}
	q.Globals = globals

	switch {
	case p.atKw("forward") || p.atKw("backward"):
		dep, err := p.parseDependency()
		if err != nil {
			return nil, err
		}
		q.Dep = dep
	case p.at(lexer.Ident) && isEntityType(p.cur().Text):
		// Look ahead past the first entity to decide multievent vs
		// dependency: a dependency edge begins with -> or <-.
		save := p.pos
		if _, err := p.parseEntity(); err != nil {
			return nil, err
		}
		isDep := p.at(lexer.Arrow) || p.at(lexer.BackArrow)
		p.pos = save
		if isDep {
			dep, err := p.parseDependency()
			if err != nil {
				return nil, err
			}
			q.Dep = dep
		} else {
			m, err := p.parseMultiEvent()
			if err != nil {
				return nil, err
			}
			q.Multi = m
		}
	default:
		return nil, p.errHere("expected an event pattern or dependency path, found %q", p.cur().Text)
	}
	return q, nil
}

// parseGlobals consumes global constraints until the first event pattern or
// dependency direction keyword.
func (p *parser) parseGlobals() ([]ast.Global, error) {
	var out []ast.Global
	for {
		// Optional comma separators between globals
		// (e.g. "window = 1 min, step = 10 sec").
		for p.at(lexer.Comma) {
			p.advance()
		}
		t := p.cur()
		switch {
		case t.Kind == lexer.LParen:
			w, err := p.parseParenWindow()
			if err != nil {
				return nil, err
			}
			out = append(out, ast.Global{Pos: p.posOf(t), Window: w})
		case t.Is("window") && p.peek().Kind == lexer.Eq:
			p.advance()
			p.advance()
			ms, err := p.parseDuration()
			if err != nil {
				return nil, err
			}
			out = append(out, ast.Global{Pos: p.posOf(t), Slide: &ast.SlideWind{Pos: p.posOf(t), Length: ms}})
		case t.Is("step") && p.peek().Kind == lexer.Eq:
			p.advance()
			p.advance()
			ms, err := p.parseDuration()
			if err != nil {
				return nil, err
			}
			out = append(out, ast.Global{Pos: p.posOf(t), Slide: &ast.SlideWind{Pos: p.posOf(t), Step: ms}})
		case t.Kind == lexer.Ident && !isEntityType(t.Text) && !t.Is("forward") && !t.Is("backward") &&
			(isCstrStart(p.peek().Kind) || p.peek().Is("in") || p.peek().Is("not")):
			c, err := p.parseCstrAtom()
			if err != nil {
				return nil, err
			}
			out = append(out, ast.Global{Pos: p.posOf(t), Cstr: c})
		default:
			return out, nil
		}
	}
}

func isCstrStart(k lexer.Kind) bool {
	switch k {
	case lexer.Eq, lexer.Ne, lexer.Lt, lexer.Le, lexer.Gt, lexer.Ge:
		return true
	}
	return false
}

// parseParenWindow ::= '(' ('at' dt | 'from' dt 'to' dt) ')'
func (p *parser) parseParenWindow() (*ast.WindowLit, error) {
	open, err := p.expect(lexer.LParen)
	if err != nil {
		return nil, err
	}
	w := &ast.WindowLit{Pos: p.posOf(open)}
	switch {
	case p.acceptKw("at"):
		s, err := p.expect(lexer.String)
		if err != nil {
			return nil, err
		}
		w.At = s.Text
	case p.acceptKw("from"):
		s, err := p.expect(lexer.String)
		if err != nil {
			return nil, err
		}
		w.From = s.Text
		if err := p.expectKw("to"); err != nil {
			return nil, err
		}
		e, err := p.expect(lexer.String)
		if err != nil {
			return nil, err
		}
		w.To = e.Text
	default:
		return nil, p.errHere("expected 'at' or 'from' in time window")
	}
	if _, err := p.expect(lexer.RParen); err != nil {
		return nil, err
	}
	// Validate eagerly so bad literals are reported at parse time.
	if w.At != "" {
		if _, err := timeutil.AtWindow(w.At); err != nil {
			return nil, p.errAt(open, "%v", err)
		}
	} else {
		if _, err := timeutil.FromToWindow(w.From, w.To); err != nil {
			return nil, p.errAt(open, "%v", err)
		}
	}
	return w, nil
}

// parseDuration ::= NUMBER IDENT(unit)
func (p *parser) parseDuration() (int64, error) {
	n, err := p.expect(lexer.Number)
	if err != nil {
		return 0, err
	}
	u, err := p.expect(lexer.Ident)
	if err != nil {
		return 0, err
	}
	ms, derr := timeutil.ParseDuration(n.Text, u.Text)
	if derr != nil {
		return 0, p.errAt(u, "%v", derr)
	}
	return ms, nil
}

// --- Multievent queries ---

func (p *parser) parseMultiEvent() (*ast.MultiEvent, error) {
	m := &ast.MultiEvent{}
	for p.at(lexer.Ident) && isEntityType(p.cur().Text) {
		patt, err := p.parseEventPattern()
		if err != nil {
			return nil, err
		}
		m.Patterns = append(m.Patterns, patt)
	}
	if len(m.Patterns) == 0 {
		return nil, p.errHere("expected at least one event pattern")
	}
	if p.acceptKw("with") {
		for {
			r, err := p.parseRel()
			if err != nil {
				return nil, err
			}
			m.Rels = append(m.Rels, r)
			if _, ok := p.accept(lexer.Comma); !ok {
				break
			}
		}
	}
	ret, err := p.parseReturn()
	if err != nil {
		return nil, err
	}
	m.Return = ret
	if err := p.parseTrailing(&m.GroupBy, &m.Having, &m.SortBy, &m.SortDesc, &m.Top); err != nil {
		return nil, err
	}
	return m, nil
}

// parseEventPattern ::= entity op_exp entity ('as' evt_id ('[' attr_cstr ']')?)? ('(' twind ')')?
func (p *parser) parseEventPattern() (*ast.EventPattern, error) {
	start := p.cur()
	subj, err := p.parseEntity()
	if err != nil {
		return nil, err
	}
	op, err := p.parseOpExpr()
	if err != nil {
		return nil, err
	}
	obj, err := p.parseEntity()
	if err != nil {
		return nil, err
	}
	patt := &ast.EventPattern{Pos: p.posOf(start), Subj: subj, Op: op, Obj: obj}
	if p.acceptKw("as") {
		id, err := p.expect(lexer.Ident)
		if err != nil {
			return nil, err
		}
		if isReserved(id.Text) {
			return nil, p.errAt(id, "%q is a reserved word and cannot name an event", id.Text)
		}
		patt.EvtID = id.Text
		if _, ok := p.accept(lexer.LBracket); ok {
			c, err := p.parseAttrExpr()
			if err != nil {
				return nil, err
			}
			patt.EvtCstr = c
			if _, err := p.expect(lexer.RBracket); err != nil {
				return nil, err
			}
		}
	}
	if p.at(lexer.LParen) {
		w, err := p.parseParenWindow()
		if err != nil {
			return nil, err
		}
		patt.Window = w
	}
	return patt, nil
}

// parseEntity ::= entity_type e_id? ('[' attr_cstr ']')?
func (p *parser) parseEntity() (ast.EntityRef, error) {
	t, err := p.expect(lexer.Ident)
	if err != nil {
		return ast.EntityRef{}, err
	}
	if !isEntityType(t.Text) {
		return ast.EntityRef{}, p.errAt(t, "expected entity type (proc, file, ip), found %q", t.Text)
	}
	ref := ast.EntityRef{Pos: p.posOf(t), Type: strings.ToLower(t.Text)}
	if p.at(lexer.Ident) && !isReserved(p.cur().Text) {
		ref.ID = p.advance().Text
	}
	if _, ok := p.accept(lexer.LBracket); ok {
		c, err := p.parseAttrExpr()
		if err != nil {
			return ast.EntityRef{}, err
		}
		ref.Cstr = c
		if _, err := p.expect(lexer.RBracket); err != nil {
			return ast.EntityRef{}, err
		}
	}
	return ref, nil
}

// --- Operation expressions ---

func (p *parser) parseOpExpr() (ast.OpExpr, error) {
	return p.parseOpOr()
}

func (p *parser) parseOpOr() (ast.OpExpr, error) {
	l, err := p.parseOpAnd()
	if err != nil {
		return nil, err
	}
	for p.at(lexer.OrOr) {
		p.advance()
		r, err := p.parseOpAnd()
		if err != nil {
			return nil, err
		}
		l = &ast.BinOp{Op: "||", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseOpAnd() (ast.OpExpr, error) {
	l, err := p.parseOpUnary()
	if err != nil {
		return nil, err
	}
	for p.at(lexer.AndAnd) {
		p.advance()
		r, err := p.parseOpUnary()
		if err != nil {
			return nil, err
		}
		l = &ast.BinOp{Op: "&&", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseOpUnary() (ast.OpExpr, error) {
	if _, ok := p.accept(lexer.Bang); ok {
		x, err := p.parseOpUnary()
		if err != nil {
			return nil, err
		}
		return &ast.NotOp{X: x}, nil
	}
	if _, ok := p.accept(lexer.LParen); ok {
		x, err := p.parseOpExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(lexer.RParen); err != nil {
			return nil, err
		}
		return x, nil
	}
	t, err := p.expect(lexer.Ident)
	if err != nil {
		return nil, err
	}
	if _, ok := types.ParseOp(t.Text); !ok {
		return nil, p.errAt(t, "unknown operation %q", t.Text)
	}
	return &ast.OpName{Pos: p.posOf(t), Name: strings.ToLower(t.Text)}, nil
}

// --- Attribute constraint expressions ---

// parseAttrExpr parses the contents of a [...] constraint. A comma inside
// brackets acts as a conjunction (Query 3: ["%/bin/cp%", agentid = 2]).
func (p *parser) parseAttrExpr() (ast.AttrExpr, error) {
	l, err := p.parseAttrOr()
	if err != nil {
		return nil, err
	}
	for p.at(lexer.Comma) {
		p.advance()
		r, err := p.parseAttrOr()
		if err != nil {
			return nil, err
		}
		l = &ast.BinAttr{Op: "&&", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAttrOr() (ast.AttrExpr, error) {
	l, err := p.parseAttrAnd()
	if err != nil {
		return nil, err
	}
	for p.at(lexer.OrOr) {
		p.advance()
		r, err := p.parseAttrAnd()
		if err != nil {
			return nil, err
		}
		l = &ast.BinAttr{Op: "||", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAttrAnd() (ast.AttrExpr, error) {
	l, err := p.parseAttrUnary()
	if err != nil {
		return nil, err
	}
	for p.at(lexer.AndAnd) {
		p.advance()
		r, err := p.parseAttrUnary()
		if err != nil {
			return nil, err
		}
		l = &ast.BinAttr{Op: "&&", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAttrUnary() (ast.AttrExpr, error) {
	if _, ok := p.accept(lexer.Bang); ok {
		x, err := p.parseAttrUnary()
		if err != nil {
			return nil, err
		}
		return &ast.NotAttr{X: x}, nil
	}
	if p.at(lexer.LParen) {
		p.advance()
		x, err := p.parseAttrExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(lexer.RParen); err != nil {
			return nil, err
		}
		return x, nil
	}
	return p.parseCstrAtom()
}

// parseCstrAtom ::= attr bop val | val | attr 'not'? 'in' '(' vals ')'
func (p *parser) parseCstrAtom() (ast.AttrExpr, error) {
	t := p.cur()
	switch t.Kind {
	case lexer.String:
		p.advance()
		return &ast.Cstr{Pos: p.posOf(t), Op: "=", Val: t.Text, ValIsString: true}, nil
	case lexer.Number:
		p.advance()
		return &ast.Cstr{Pos: p.posOf(t), Op: "=", Val: t.Text}, nil
	case lexer.Ident:
		attrTok := p.advance()
		attr := normalizeAttr(attrTok.Text)
		switch {
		case p.atKw("not") && p.peek().Is("in"):
			p.advance()
			p.advance()
			vals, err := p.parseValList()
			if err != nil {
				return nil, err
			}
			return &ast.Cstr{Pos: p.posOf(attrTok), Attr: attr, Op: "notin", Vals: vals}, nil
		case p.atKw("in"):
			p.advance()
			vals, err := p.parseValList()
			if err != nil {
				return nil, err
			}
			return &ast.Cstr{Pos: p.posOf(attrTok), Attr: attr, Op: "in", Vals: vals}, nil
		case isCstrStart(p.cur().Kind):
			opTok := p.advance()
			val, isStr, err := p.parseValue()
			if err != nil {
				return nil, err
			}
			return &ast.Cstr{Pos: p.posOf(attrTok), Attr: attr, Op: opTok.Text, Val: val, ValIsString: isStr}, nil
		default:
			// A bare identifier is a bare-value shortcut (rare but legal,
			// e.g. file[viminfo]).
			return &ast.Cstr{Pos: p.posOf(attrTok), Op: "=", Val: attrTok.Text}, nil
		}
	}
	return nil, p.errHere("expected attribute constraint, found %q", t.Text)
}

func (p *parser) parseValue() (string, bool, error) {
	t := p.cur()
	switch t.Kind {
	case lexer.String:
		p.advance()
		return t.Text, true, nil
	case lexer.Number:
		p.advance()
		return t.Text, false, nil
	case lexer.Ident:
		p.advance()
		return t.Text, false, nil
	case lexer.Minus:
		p.advance()
		n, err := p.expect(lexer.Number)
		if err != nil {
			return "", false, err
		}
		return "-" + n.Text, false, nil
	}
	return "", false, p.errHere("expected value, found %q", t.Text)
}

func (p *parser) parseValList() ([]string, error) {
	if _, err := p.expect(lexer.LParen); err != nil {
		return nil, err
	}
	var vals []string
	for {
		v, _, err := p.parseValue()
		if err != nil {
			return nil, err
		}
		vals = append(vals, v)
		if _, ok := p.accept(lexer.Comma); !ok {
			break
		}
	}
	if _, err := p.expect(lexer.RParen); err != nil {
		return nil, err
	}
	return vals, nil
}

// normalizeAttr canonicalizes surface attribute spellings: the paper writes
// both dstip and dst_ip.
func normalizeAttr(a string) string {
	switch strings.ToLower(a) {
	case "dstip":
		return types.AttrDstIP
	case "srcip":
		return types.AttrSrcIP
	case "dstport":
		return types.AttrDstPort
	case "srcport":
		return types.AttrSrcPort
	case "exename", "exe":
		return types.AttrExeName
	default:
		return strings.ToLower(a)
	}
}

// --- Relationships ---

func (p *parser) parseRel() (ast.Rel, error) {
	l, err := p.expect(lexer.Ident)
	if err != nil {
		return nil, err
	}
	if isReserved(l.Text) {
		return nil, p.errAt(l, "expected entity or event id, found reserved word %q", l.Text)
	}
	// Temporal relationship?
	if p.atKw("before") || p.atKw("after") || p.atKw("within") {
		kind := strings.ToLower(p.advance().Text)
		tr := &ast.TempRel{Pos: p.posOf(l), LEvt: l.Text, Kind: kind}
		if _, ok := p.accept(lexer.LBracket); ok {
			lo, err := p.expect(lexer.Number)
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(lexer.Minus); err != nil {
				return nil, err
			}
			hi, err := p.expect(lexer.Number)
			if err != nil {
				return nil, err
			}
			unit, err := p.expect(lexer.Ident)
			if err != nil {
				return nil, err
			}
			if _, uerr := timeutil.UnitMillis(unit.Text); uerr != nil {
				return nil, p.errAt(unit, "%v", uerr)
			}
			tr.Lo, tr.Hi, tr.Unit = lo.Text, hi.Text, unit.Text
			if _, err := p.expect(lexer.RBracket); err != nil {
				return nil, err
			}
		}
		r, err := p.expect(lexer.Ident)
		if err != nil {
			return nil, err
		}
		tr.REvt = r.Text
		return tr, nil
	}
	// Attribute relationship.
	ar := &ast.AttrRel{Pos: p.posOf(l), LID: l.Text}
	if _, ok := p.accept(lexer.Dot); ok {
		a, err := p.expect(lexer.Ident)
		if err != nil {
			return nil, err
		}
		ar.LAttr = normalizeAttr(a.Text)
	}
	if !isCstrStart(p.cur().Kind) {
		return nil, p.errHere("expected comparison operator in relationship, found %q", p.cur().Text)
	}
	ar.Op = p.advance().Text
	r, err := p.expect(lexer.Ident)
	if err != nil {
		return nil, err
	}
	ar.RID = r.Text
	if _, ok := p.accept(lexer.Dot); ok {
		a, err := p.expect(lexer.Ident)
		if err != nil {
			return nil, err
		}
		ar.RAttr = normalizeAttr(a.Text)
	}
	return ar, nil
}

// --- Return and trailing clauses ---

func (p *parser) parseReturn() (*ast.ReturnClause, error) {
	t := p.cur()
	if err := p.expectKw("return"); err != nil {
		return nil, err
	}
	rc := &ast.ReturnClause{Pos: p.posOf(t)}
	if p.atKw("count") && !(p.peek().Kind == lexer.LParen) {
		p.advance()
		rc.Count = true
	}
	if p.acceptKw("distinct") {
		rc.Distinct = true
	}
	for {
		item, err := p.parseReturnItem()
		if err != nil {
			return nil, err
		}
		rc.Items = append(rc.Items, item)
		if _, ok := p.accept(lexer.Comma); !ok {
			break
		}
	}
	return rc, nil
}

var aggFuncs = map[string]bool{
	"count": true, "avg": true, "sum": true, "min": true, "max": true,
}

func (p *parser) parseReturnItem() (ast.ReturnItem, error) {
	expr, err := p.parseResExpr()
	if err != nil {
		return ast.ReturnItem{}, err
	}
	item := ast.ReturnItem{Expr: expr}
	if p.acceptKw("as") {
		id, err := p.expect(lexer.Ident)
		if err != nil {
			return ast.ReturnItem{}, err
		}
		item.As = id.Text
	}
	return item, nil
}

func (p *parser) parseResExpr() (ast.ResExpr, error) {
	t, err := p.expect(lexer.Ident)
	if err != nil {
		return nil, err
	}
	name := strings.ToLower(t.Text)
	if aggFuncs[name] && p.at(lexer.LParen) {
		p.advance()
		agg := &ast.Agg{Pos: p.posOf(t), Func: name}
		if p.acceptKw("distinct") {
			agg.Distinct = true
		}
		arg, err := p.parseResExpr()
		if err != nil {
			return nil, err
		}
		agg.Arg = arg
		if _, err := p.expect(lexer.RParen); err != nil {
			return nil, err
		}
		return agg, nil
	}
	if isReserved(t.Text) {
		return nil, p.errAt(t, "expected result reference, found reserved word %q", t.Text)
	}
	ref := &ast.Ref{Pos: p.posOf(t), ID: t.Text}
	if _, ok := p.accept(lexer.Dot); ok {
		a, err := p.expect(lexer.Ident)
		if err != nil {
			return nil, err
		}
		ref.Attr = normalizeAttr(a.Text)
	}
	return ref, nil
}

// parseTrailing accepts {group by, having, sort by, top} in any order.
func (p *parser) parseTrailing(groupBy *[]ast.ResExpr, having *ast.Expr, sortBy *[]ast.SortKey, sortDesc *bool, top *int) error {
	for {
		switch {
		case p.atKw("group"):
			p.advance()
			if err := p.expectKw("by"); err != nil {
				return err
			}
			for {
				r, err := p.parseResExpr()
				if err != nil {
					return err
				}
				*groupBy = append(*groupBy, r)
				if _, ok := p.accept(lexer.Comma); !ok {
					break
				}
			}
		case p.atKw("having"):
			p.advance()
			e, err := p.parseExpr()
			if err != nil {
				return err
			}
			*having = e
		case p.atKw("sort"):
			p.advance()
			if err := p.expectKw("by"); err != nil {
				return err
			}
			for {
				id, err := p.expect(lexer.Ident)
				if err != nil {
					return err
				}
				key := ast.SortKey{Name: id.Text}
				if _, ok := p.accept(lexer.Dot); ok {
					a, err := p.expect(lexer.Ident)
					if err != nil {
						return err
					}
					key.Attr = normalizeAttr(a.Text)
				}
				*sortBy = append(*sortBy, key)
				if _, ok := p.accept(lexer.Comma); !ok {
					break
				}
			}
			if p.acceptKw("desc") {
				*sortDesc = true
			} else {
				p.acceptKw("asc")
			}
		case p.atKw("top"):
			p.advance()
			n, err := p.expect(lexer.Number)
			if err != nil {
				return err
			}
			v := 0
			if _, serr := fmt.Sscanf(n.Text, "%d", &v); serr != nil || v <= 0 {
				return p.errAt(n, "top expects a positive integer, found %q", n.Text)
			}
			*top = v
		default:
			return nil
		}
	}
}

// --- Having expressions ---

func (p *parser) parseExpr() (ast.Expr, error) { return p.parseExprOr() }

func (p *parser) parseExprOr() (ast.Expr, error) {
	l, err := p.parseExprAnd()
	if err != nil {
		return nil, err
	}
	for p.at(lexer.OrOr) {
		p.advance()
		r, err := p.parseExprAnd()
		if err != nil {
			return nil, err
		}
		l = &ast.Binary{Op: "||", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseExprAnd() (ast.Expr, error) {
	l, err := p.parseExprCmp()
	if err != nil {
		return nil, err
	}
	for p.at(lexer.AndAnd) {
		p.advance()
		r, err := p.parseExprCmp()
		if err != nil {
			return nil, err
		}
		l = &ast.Binary{Op: "&&", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseExprCmp() (ast.Expr, error) {
	l, err := p.parseExprAdd()
	if err != nil {
		return nil, err
	}
	if isCstrStart(p.cur().Kind) {
		op := p.advance().Text
		r, err := p.parseExprAdd()
		if err != nil {
			return nil, err
		}
		return &ast.Binary{Op: op, L: l, R: r}, nil
	}
	return l, nil
}

func (p *parser) parseExprAdd() (ast.Expr, error) {
	l, err := p.parseExprMul()
	if err != nil {
		return nil, err
	}
	for p.at(lexer.Plus) || p.at(lexer.Minus) {
		op := p.advance().Text
		r, err := p.parseExprMul()
		if err != nil {
			return nil, err
		}
		l = &ast.Binary{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseExprMul() (ast.Expr, error) {
	l, err := p.parseExprUnary()
	if err != nil {
		return nil, err
	}
	for p.at(lexer.Star) || p.at(lexer.Slash) {
		op := p.advance().Text
		r, err := p.parseExprUnary()
		if err != nil {
			return nil, err
		}
		l = &ast.Binary{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseExprUnary() (ast.Expr, error) {
	switch {
	case p.at(lexer.Minus):
		p.advance()
		x, err := p.parseExprUnary()
		if err != nil {
			return nil, err
		}
		return &ast.Unary{Op: "-", X: x}, nil
	case p.at(lexer.Bang):
		p.advance()
		x, err := p.parseExprUnary()
		if err != nil {
			return nil, err
		}
		return &ast.Unary{Op: "!", X: x}, nil
	}
	return p.parseExprPrimary()
}

func (p *parser) parseExprPrimary() (ast.Expr, error) {
	t := p.cur()
	switch t.Kind {
	case lexer.Number:
		p.advance()
		var v float64
		if _, err := fmt.Sscanf(t.Text, "%g", &v); err != nil {
			return nil, p.errAt(t, "bad number %q", t.Text)
		}
		return &ast.NumLit{Pos: p.posOf(t), Val: v, Raw: t.Text}, nil
	case lexer.String:
		p.advance()
		return &ast.StrLit{Pos: p.posOf(t), Val: t.Text}, nil
	case lexer.LParen:
		p.advance()
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(lexer.RParen); err != nil {
			return nil, err
		}
		return x, nil
	case lexer.Ident:
		p.advance()
		// Function call: EWMA(freq, 0.9), SMA(freq, 3), abs(x), ...
		if p.at(lexer.LParen) {
			p.advance()
			call := &ast.Call{Pos: p.posOf(t), Func: strings.ToUpper(t.Text)}
			if !p.at(lexer.RParen) {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if _, ok := p.accept(lexer.Comma); !ok {
						break
					}
				}
			}
			if _, err := p.expect(lexer.RParen); err != nil {
				return nil, err
			}
			return call, nil
		}
		// History state: freq[1].
		if p.at(lexer.LBracket) {
			p.advance()
			n, err := p.expect(lexer.Number)
			if err != nil {
				return nil, err
			}
			var idx int
			if _, serr := fmt.Sscanf(n.Text, "%d", &idx); serr != nil || idx < 0 {
				return nil, p.errAt(n, "history index must be a non-negative integer")
			}
			if _, err := p.expect(lexer.RBracket); err != nil {
				return nil, err
			}
			return &ast.VarRef{Pos: p.posOf(t), Name: t.Text, Hist: idx}, nil
		}
		// Field reference: evt.amount.
		if p.at(lexer.Dot) {
			p.advance()
			a, err := p.expect(lexer.Ident)
			if err != nil {
				return nil, err
			}
			return &ast.FieldRef{Pos: p.posOf(t), ID: t.Text, Attr: normalizeAttr(a.Text)}, nil
		}
		return &ast.VarRef{Pos: p.posOf(t), Name: t.Text}, nil
	}
	return nil, p.errHere("expected expression, found %q", t.Text)
}

// --- Dependency queries ---

func (p *parser) parseDependency() (*ast.Dependency, error) {
	start := p.cur()
	dep := &ast.Dependency{Pos: p.posOf(start)}
	if p.atKw("forward") || p.atKw("backward") {
		dep.Direction = strings.ToLower(p.advance().Text)
		if _, err := p.expect(lexer.Colon); err != nil {
			return nil, err
		}
	}
	first, err := p.parseEntity()
	if err != nil {
		return nil, err
	}
	dep.Nodes = append(dep.Nodes, first)
	for p.at(lexer.Arrow) || p.at(lexer.BackArrow) {
		arrow := p.advance()
		if _, err := p.expect(lexer.LBracket); err != nil {
			return nil, err
		}
		op, err := p.parseOpExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(lexer.RBracket); err != nil {
			return nil, err
		}
		node, err := p.parseEntity()
		if err != nil {
			return nil, err
		}
		dep.Edges = append(dep.Edges, ast.DepEdge{Pos: p.posOf(arrow), Dir: arrow.Text, Op: op})
		dep.Nodes = append(dep.Nodes, node)
	}
	if len(dep.Nodes) < 2 {
		return nil, p.errAt(start, "dependency query needs at least one edge")
	}
	ret, err := p.parseReturn()
	if err != nil {
		return nil, err
	}
	dep.Return = ret
	var groupBy []ast.ResExpr
	var having ast.Expr
	if err := p.parseTrailing(&groupBy, &having, &dep.SortBy, &dep.SortDesc, &dep.Top); err != nil {
		return nil, err
	}
	if len(groupBy) > 0 || having != nil {
		return nil, p.errAt(start, "dependency queries do not support group by / having")
	}
	return dep, nil
}
