package parser_test

import (
	"strings"
	"testing"

	"aiql/internal/engine"
	"aiql/internal/parser"
	"aiql/internal/queries"
)

// FuzzParse asserts that arbitrary input never panics the parser, that a
// parse error always carries a position, and that anything that parses
// also compiles (or fails compilation with an error, not a crash) — the
// pipeline a hostile /query body walks before any data is touched. Seeds
// are the committed corpus under testdata/fuzz/FuzzParse — the
// documentation and example queries — plus the evaluation corpus added
// here.
func FuzzParse(f *testing.F) {
	for _, q := range append(queries.CaseStudy(), queries.Behaviors()...) {
		f.Add(q.Src)
	}
	f.Add("proc p read file f return p")
	f.Add("backward: file f <-[write] proc p ->[read] ip i return f, p, i")
	f.Add("window = 1 min, step = 10 sec\nproc p write ip i as evt\nreturn p, avg(evt.amount) as amt\ngroup by p\nhaving (amt > 1)")
	f.Add("return")
	f.Add("with evt1 before[0-2 min] evt2")
	f.Fuzz(func(t *testing.T, src string) {
		q, err := parser.Parse(src)
		if err != nil {
			if !strings.Contains(err.Error(), "aiql:") {
				// Lexer and parser errors both carry positions; anything
				// else escaping Parse is a bug.
				t.Errorf("parse error without position: %v", err)
			}
			return
		}
		if q == nil {
			t.Fatal("Parse returned nil query and nil error")
		}
		// Whatever parses must compile without panicking.
		_, _ = engine.Compile(q)
	})
}
