package parser

import (
	"strings"
	"testing"

	"aiql/internal/ast"
)

// The inline queries from the paper, verbatim modulo whitespace.
var paperQueries = map[string]string{
	"query1_cve": `
		agentid = 1 // host id; spatial constraints
		(at "01/01/2017") // temporal constraints
		proc p1 start proc p2["%telnet%"] as evt1
		proc p3 start ip ipp[dstport = 4444] as evt2
		proc p4["%apache%"] read file f1["/var/www%"] as evt3
		with p2 = p3, // attribute relationship
		evt1 before evt2, evt3 after evt2 // temporal relationships
		return p1, p2, p4, f1`,
	"query2_history_probe": `
		agentid = 1
		(at "01/01/2017")
		proc p2 start proc p1 as evt1
		proc p3 read file[".viminfo" || ".bash_history"] as evt2
		with p1 = p3, evt1 before evt2
		return p2, p1
		sort by p2, p1`,
	"query3_forward_tracking": `
		(at "01/01/2017")
		forward: proc p1["%/bin/cp%", agentid = 2] ->[write] file f1["/var/www/%info_stealer%"]
		<-[read] proc p2["%apache%"]
		->[connect] proc p3[agentid = 3]
		->[write] file f2["%info_stealer%"]
		return f1, p1, p2, p3, f2`,
	"query4_sma_anomaly": `
		(at "01/01/2017")
		window = 1 min
		step = 10 sec
		proc p read ip ipp
		return p, count(distinct ipp) as freq
		group by p
		having freq > 2 * (freq + freq[1] + freq[2]) / 3`,
	"query5_large_transfer": `
		(at "03/20/2017")
		agentid = 5
		window = 1 min, step = 10 sec
		proc p write ip i[dstip = "10.10.1.129"] as evt
		return p, avg(evt.amount) as amt
		group by p
		having (amt > 2 * (amt + amt[1] + amt[2]) / 3)`,
	"query6_starter_c5": `
		(at "03/20/2017")
		agentid = 5
		proc p1["%sbblv.exe"] read || write file f1 as evt1
		proc p1 read || write ip i1[dstip = "10.10.1.129"] as evt2
		with evt1 before evt2
		return distinct p1, f1, i1, evt1.optype, evt1.access`,
	"query7_complete_c5": `
		(at "03/20/2017")
		agentid = 5
		proc p1["%cmd.exe"] start proc p2["%osql.exe"] as evt1
		proc p3["%sqlservr.exe"] write file f1["%backup1.dmp"] as evt2
		proc p4["%sbblv.exe"] read file f1 as evt3
		proc p4 read || write ip i1[dstip = "10.10.1.129"] as evt4
		with evt1 before evt2, evt2 before evt3, evt3 before evt4
		return distinct p1, p2, p3, f1, p4, i1`,
}

func TestParsePaperQueries(t *testing.T) {
	for name, src := range paperQueries {
		t.Run(name, func(t *testing.T) {
			q, err := Parse(src)
			if err != nil {
				t.Fatalf("parse failed: %v", err)
			}
			if q.Multi == nil && q.Dep == nil {
				t.Fatal("parsed query has neither multievent nor dependency body")
			}
		})
	}
}

func TestParseQuery1Shape(t *testing.T) {
	q := MustParse(paperQueries["query1_cve"])
	m := q.Multi
	if m == nil {
		t.Fatal("expected multievent query")
	}
	if got := len(m.Patterns); got != 3 {
		t.Fatalf("patterns = %d, want 3", got)
	}
	if got := len(m.Rels); got != 3 {
		t.Fatalf("rels = %d, want 3", got)
	}
	if got := len(m.Return.Items); got != 4 {
		t.Fatalf("return items = %d, want 4", got)
	}
	if len(q.Globals) != 2 {
		t.Fatalf("globals = %d, want 2", len(q.Globals))
	}
	if q.Globals[0].Cstr == nil {
		t.Error("first global should be the agentid constraint")
	}
	if q.Globals[1].Window == nil {
		t.Error("second global should be the time window")
	}
	// Pattern 2's object carries a dstport constraint with attr
	// normalization applied.
	obj := m.Patterns[1].Obj
	c, ok := obj.Cstr.(*ast.Cstr)
	if !ok {
		t.Fatalf("pattern 2 object constraint type %T", obj.Cstr)
	}
	if c.Attr != "dst_port" || c.Val != "4444" {
		t.Errorf("pattern 2 object constraint = %s %s %s", c.Attr, c.Op, c.Val)
	}
}

func TestParseDependencyShape(t *testing.T) {
	q := MustParse(paperQueries["query3_forward_tracking"])
	d := q.Dep
	if d == nil {
		t.Fatal("expected dependency query")
	}
	if d.Direction != "forward" {
		t.Errorf("direction = %q, want forward", d.Direction)
	}
	if len(d.Nodes) != 5 || len(d.Edges) != 4 {
		t.Fatalf("nodes=%d edges=%d, want 5/4", len(d.Nodes), len(d.Edges))
	}
	if d.Edges[1].Dir != "<-" {
		t.Errorf("edge 1 dir = %q, want <-", d.Edges[1].Dir)
	}
	if len(d.Return.Items) != 5 {
		t.Errorf("return items = %d, want 5", len(d.Return.Items))
	}
}

func TestParseAnomalyShape(t *testing.T) {
	q := MustParse(paperQueries["query4_sma_anomaly"])
	if !q.IsAnomaly() {
		t.Fatal("query 4 should be an anomaly query")
	}
	m := q.Multi
	if len(m.GroupBy) != 1 {
		t.Fatalf("group by = %d items, want 1", len(m.GroupBy))
	}
	if m.Having == nil {
		t.Fatal("missing having clause")
	}
	// Having must reference history states freq[1], freq[2].
	hist := 0
	ast.WalkExpr(m.Having, func(e ast.Expr) {
		if v, ok := e.(*ast.VarRef); ok && v.Hist > 0 {
			hist++
		}
	})
	if hist != 2 {
		t.Errorf("history refs in having = %d, want 2", hist)
	}
	// Return aliases count(distinct ipp) as freq.
	item := m.Return.Items[1]
	if item.As != "freq" {
		t.Errorf("alias = %q, want freq", item.As)
	}
	agg, ok := item.Expr.(*ast.Agg)
	if !ok || agg.Func != "count" || !agg.Distinct {
		t.Errorf("expected count(distinct ...), got %v", item.Expr)
	}
}

func TestParseTemporalRange(t *testing.T) {
	q := MustParse(`
		(at "01/01/2017")
		proc p1 start proc p2 as evt1
		proc p3 write file f1 as evt2
		with p2 = p3, evt1 before[1-2 minutes] evt2
		return p1, f1`)
	var tr *ast.TempRel
	for _, r := range q.Multi.Rels {
		if v, ok := r.(*ast.TempRel); ok {
			tr = v
		}
	}
	if tr == nil {
		t.Fatal("no temporal relationship parsed")
	}
	if tr.Lo != "1" || tr.Hi != "2" || tr.Unit != "minutes" {
		t.Errorf("range = %s-%s %s, want 1-2 minutes", tr.Lo, tr.Hi, tr.Unit)
	}
}

func TestParseEWMAHaving(t *testing.T) {
	q := MustParse(`
		window = 1 min, step = 10 sec
		proc p read ip ipp
		return p, count(distinct ipp) as freq
		group by p
		having (freq - EWMA(freq, 0.9)) / EWMA(freq, 0.9) > 0.2`)
	calls := 0
	ast.WalkExpr(q.Multi.Having, func(e ast.Expr) {
		if c, ok := e.(*ast.Call); ok && c.Func == "EWMA" {
			calls++
			if len(c.Args) != 2 {
				t.Errorf("EWMA arity = %d, want 2", len(c.Args))
			}
		}
	})
	if calls != 2 {
		t.Errorf("EWMA calls = %d, want 2", calls)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"empty", ``, "expected an event pattern"},
		{"bad op", `proc p1 frobnicate proc p2 return p1`, "unknown operation"},
		{"missing return", `proc p1 start proc p2`, `expected "return"`},
		{"unterminated string", `proc p1["%cmd`, "unterminated string"},
		{"reserved event id", `proc p1 start proc p2 as return return p1`, "reserved word"},
		{"bad date", `(at "13/45/2017") proc p1 start proc p2 return p1`, "unrecognized date"},
		{"bad unit", `proc p1 start proc p2 as e1 proc p2 write file f as e2 with e1 before[1-2 fortnights] e2 return p1`, "unknown time unit"},
		{"top zero", `proc p1 start proc p2 return p1 top 0`, "positive integer"},
		{"dep group by", `proc p1 ->[write] file f1 return p1 group by p1`, "do not support group by"},
		{"trailing garbage", `proc p1 start proc p2 return p1 bogus extra`, "unexpected"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src)
			if err == nil {
				t.Fatal("expected error, got nil")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestParseOpExprForms(t *testing.T) {
	cases := []string{
		`proc p1 read || write file f1 return p1`,
		`proc p1 !read file f1 return p1`,
		`proc p1 (read || write) && !delete file f1 return p1`,
		`proc p1 read||write||execute file f1 return p1`,
	}
	for _, src := range cases {
		if _, err := Parse(src); err != nil {
			t.Errorf("Parse(%q) failed: %v", src, err)
		}
	}
}

func TestParseGlobalsOrderIndependent(t *testing.T) {
	a := MustParse(`agentid = 1 (at "01/01/2017") proc p1 start proc p2 return p1`)
	b := MustParse(`(at "01/01/2017") agentid = 1 proc p1 start proc p2 return p1`)
	if len(a.Globals) != 2 || len(b.Globals) != 2 {
		t.Fatalf("globals = %d/%d, want 2/2", len(a.Globals), len(b.Globals))
	}
}

func TestEntityIDReuse(t *testing.T) {
	// Query 2 variant: reusing p1 in evt2 and omitting p1 = p3.
	q := MustParse(`
		agentid = 1
		proc p2 start proc p1 as evt1
		proc p1 read file[".viminfo"] as evt2
		with evt1 before evt2
		return p2, p1`)
	if q.Multi.Patterns[1].Subj.ID != "p1" {
		t.Errorf("subject id = %q, want p1", q.Multi.Patterns[1].Subj.ID)
	}
}

func TestParseInList(t *testing.T) {
	q := MustParse(`proc p1[exe_name in ("a.exe", "b.exe")] write file f1[name not in ("x", "y")] return p1, f1`)
	c := q.Multi.Patterns[0].Subj.Cstr.(*ast.Cstr)
	if c.Op != "in" || len(c.Vals) != 2 {
		t.Errorf("subject cstr = %+v", c)
	}
	oc := q.Multi.Patterns[0].Obj.Cstr.(*ast.Cstr)
	if oc.Op != "notin" || len(oc.Vals) != 2 {
		t.Errorf("object cstr = %+v", oc)
	}
}
