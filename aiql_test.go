package aiql_test

import (
	"strings"
	"testing"

	"aiql"
	"aiql/internal/engine"
	"aiql/internal/gen"
	"aiql/internal/types"
)

// newDB builds a database over a tiny hand-made dataset through the public
// API only.
func newDB(t testing.TB) *aiql.DB {
	t.Helper()
	b := gen.NewBuilder(7)
	day := gen.DayStart(1)
	bash := b.Proc(1, "/bin/bash")
	curl := b.ProcInstance(1, "/usr/bin/curl")
	key := b.File(1, "/home/alice/.ssh/id_rsa")
	c2 := b.Conn(1, "203.0.113.9", 443)
	b.Emit(1, bash, curl, types.OpStart, day+1000, 0)
	b.Emit(1, curl, key, types.OpRead, day+2000, 4096)
	b.Emit(1, curl, c2, types.OpWrite, day+3000, 4096)

	db := aiql.Open(aiql.Options{})
	db.Ingest(b.Dataset())
	return db
}

func TestPublicAPIQuickstart(t *testing.T) {
	db := newDB(t)
	res, err := db.Query(`
		agentid = 1
		(at "03/02/2017")
		proc p read file f["%id_rsa"] as evt1
		proc p write ip i as evt2
		with evt1 before evt2
		return p, f, i.dst_ip`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(res.Rows))
	}
	row := res.Rows[0]
	if row[0] != "/usr/bin/curl" || !strings.HasSuffix(row[1], "id_rsa") || row[2] != "203.0.113.9" {
		t.Errorf("row = %v", row)
	}
	if res.DataQueries < 2 {
		t.Errorf("data queries = %d, want >= 2", res.DataQueries)
	}
}

func TestPublicAPIParseError(t *testing.T) {
	db := newDB(t)
	_, err := db.Query("proc p1 frobnicate file f1 return p1")
	if err == nil || !strings.Contains(err.Error(), "unknown operation") {
		t.Errorf("error = %v", err)
	}
	// Errors carry positions for the REPL's error reporting.
	if !strings.Contains(err.Error(), "aiql:1:") {
		t.Errorf("error lacks position: %v", err)
	}
}

func TestPublicAPIDiagnosticsAccessors(t *testing.T) {
	db := newDB(t)
	if db.Store() == nil || db.Engine() == nil {
		t.Fatal("accessors returned nil")
	}
	if db.Store().EventCount() != 3 {
		t.Errorf("event count = %d", db.Store().EventCount())
	}
}

func TestPublicAPIOptionsPlumbing(t *testing.T) {
	// The ablation options must be reachable through the façade.
	db := aiql.Open(aiql.Options{
		Engine: engine.Options{Strategy: engine.StrategyFetchFilter},
	})
	b := gen.NewBuilder(1)
	p := b.Proc(1, "/bin/x")
	f := b.File(1, "/f")
	b.Emit(1, p, f, types.OpWrite, gen.DayStart(0)+5, 0)
	db.Ingest(b.Dataset())
	res, err := db.Query(`proc p write file f return p, f`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Errorf("rows = %d", len(res.Rows))
	}
}

func TestResultString(t *testing.T) {
	db := newDB(t)
	res, err := db.Query(`proc p read file f return p, f`)
	if err != nil {
		t.Fatal(err)
	}
	s := res.String()
	if !strings.Contains(s, "(1 rows)") || !strings.Contains(s, "p") {
		t.Errorf("rendered result:\n%s", s)
	}
}
